//! End-to-end tests of the `mei` binary: spawn the real executable and
//! drive the generate → stats → train → eval → predict → export pipeline
//! through its public command-line surface.

use std::path::PathBuf;
use std::process::{Command, Output};

fn mei(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mei")).args(args).output().expect("failed to spawn mei")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mei_cli_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_and_models_commands() {
    let help = mei(&["help"]);
    assert!(help.status.success());
    assert!(stdout(&help).contains("subcommands:"));

    let models = mei(&["models"]);
    assert!(models.status.success());
    let out = stdout(&models);
    assert!(out.contains("ComplEx"));
    assert!(out.contains("Quaternion"));
    assert!(out.contains("Octonion"));
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let o = mei(&["frobnicate"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown subcommand"));
    assert!(stderr(&o).contains("subcommands:"));
}

#[test]
fn missing_required_flag_is_reported() {
    let o = mei(&["train", "--dataset", "/nonexistent"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--out") || stderr(&o).contains("I/O error"));
}

#[test]
fn full_pipeline_generate_train_eval_predict_export() {
    let dir = workdir("pipeline");
    let data = dir.join("data");
    let data_s = data.to_str().unwrap();

    // generate
    let o = mei(&["generate", "--out", data_s, "--scale", "tiny", "--seed", "5"]);
    assert!(o.status.success(), "generate failed: {}", stderr(&o));
    assert!(data.join("train.txt").exists());

    // stats
    let o = mei(&["stats", "--dataset", data_s]);
    assert!(o.status.success());
    let out = stdout(&o);
    assert!(out.contains("inverse leakage"));
    assert!(out.contains("_hyponym_0"));

    // train (few epochs; quiet)
    let model = dir.join("model.bin");
    let model_s = model.to_str().unwrap();
    let o = mei(&[
        "train", "--dataset", data_s, "--out", model_s, "--model", "cph", "--epochs", "40",
        "--dim", "16", "--quiet", "true",
    ]);
    assert!(o.status.success(), "train failed: {}", stderr(&o));
    assert!(model.exists());

    // eval with all report options
    let o = mei(&[
        "eval",
        "--dataset",
        data_s,
        "--model-file",
        model_s,
        "--categories",
        "true",
        "--classification",
        "true",
    ]);
    assert!(o.status.success(), "eval failed: {}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("filtered: MRR"));
    assert!(out.contains("by relation category"));
    assert!(out.contains("classification accuracy"));

    // predict for a known entity/relation
    let o = mei(&[
        "predict",
        "--dataset",
        data_s,
        "--model-file",
        model_s,
        "--head",
        "synset_000001",
        "--relation",
        "_hyponym_0",
        "--topk",
        "3",
    ]);
    assert!(o.status.success(), "predict failed: {}", stderr(&o));
    assert!(stdout(&o).contains("top-3 predicted tails"));

    // export embeddings
    let tsv = dir.join("emb.tsv");
    let o = mei(&[
        "export", "--dataset", data_s, "--model-file", model_s, "--out", tsv.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "export failed: {}", stderr(&o));
    let contents = std::fs::read_to_string(&tsv).unwrap();
    assert_eq!(contents.lines().count(), 200); // tiny scale has 200 entities

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_and_eval_emit_parseable_jsonl_metrics() {
    use mei_obs::{EpochRecord, EvalRecord, RunSummary};

    let dir = workdir("metrics");
    let data = dir.join("data");
    let data_s = data.to_str().unwrap();
    assert!(mei(&["generate", "--out", data_s, "--scale", "tiny", "--seed", "5"])
        .status
        .success());

    let model = dir.join("model.bin");
    let train_log = dir.join("train.jsonl");
    let o = mei(&[
        "train", "--dataset", data_s, "--out", model.to_str().unwrap(), "--model", "complex",
        "--epochs", "6", "--eval-every", "3", "--dim", "8", "--quiet", "true",
        "--metrics-out", train_log.to_str().unwrap(), "--log-every", "2",
    ]);
    assert!(o.status.success(), "train failed: {}", stderr(&o));
    // --log-every routes per-epoch progress lines to stderr.
    assert!(stderr(&o).contains("epoch"));

    let log = std::fs::read_to_string(&train_log).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    let epochs: Vec<EpochRecord> =
        lines.iter().filter_map(|l| EpochRecord::from_json(l).ok()).collect();
    let evals: Vec<EvalRecord> =
        lines.iter().filter_map(|l| EvalRecord::from_json(l).ok()).collect();
    let runs: Vec<RunSummary> =
        lines.iter().filter_map(|l| RunSummary::from_json(l).ok()).collect();
    assert_eq!(epochs.len() + evals.len() + runs.len(), lines.len());
    assert_eq!(epochs.len(), 6);
    assert_eq!(evals.len(), 2); // epochs 3 and 6
    assert_eq!(runs.len(), 1);
    for rec in &epochs {
        assert!(rec.mean_loss.is_finite());
        assert!(rec.examples_per_sec > 0.0);
        assert!(rec.phases.total() > 0.0);
    }
    assert!(evals.iter().all(|r| r.split == "valid" && r.queries_per_sec > 0.0));

    let eval_log = dir.join("eval.jsonl");
    let o = mei(&[
        "eval",
        "--dataset",
        data_s,
        "--model-file",
        model.to_str().unwrap(),
        "--metrics-out",
        eval_log.to_str().unwrap(),
    ]);
    assert!(o.status.success(), "eval failed: {}", stderr(&o));
    assert!(stdout(&o).contains("tie-rate"));
    let log = std::fs::read_to_string(&eval_log).unwrap();
    let rec = EvalRecord::from_json(log.trim()).unwrap();
    assert_eq!(rec.split, "test");
    assert!(rec.queries > 0);
    assert_eq!(rec.head_ranks.total() + rec.tail_ranks.total(), rec.queries as u64);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predict_reports_unknown_names() {
    let dir = workdir("unknown");
    let data = dir.join("data");
    let data_s = data.to_str().unwrap();
    assert!(mei(&["generate", "--out", data_s, "--scale", "tiny"]).status.success());
    let model = dir.join("m.bin");
    assert!(mei(&[
        "train", "--dataset", data_s, "--out", model.to_str().unwrap(), "--epochs", "2",
        "--dim", "4", "--quiet", "true"
    ])
    .status
    .success());
    let o = mei(&[
        "predict",
        "--dataset",
        data_s,
        "--model-file",
        model.to_str().unwrap(),
        "--head",
        "no_such_entity",
        "--relation",
        "_hyponym_0",
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown entity"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eval_rejects_mismatched_model_and_dataset() {
    let dir = workdir("mismatch");
    let data_a = dir.join("a");
    let data_b = dir.join("b");
    assert!(mei(&["generate", "--out", data_a.to_str().unwrap(), "--scale", "tiny"])
        .status
        .success());
    // A recsys dataset has a different entity count.
    assert!(mei(&["generate", "--out", data_b.to_str().unwrap(), "--kind", "recsys"])
        .status
        .success());
    let model = dir.join("m.bin");
    assert!(mei(&[
        "train",
        "--dataset",
        data_a.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
        "--epochs",
        "2",
        "--dim",
        "4",
        "--quiet",
        "true"
    ])
    .status
    .success());
    let o = mei(&[
        "eval",
        "--dataset",
        data_b.to_str().unwrap(),
        "--model-file",
        model.to_str().unwrap(),
    ]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("wrong pairing"));
    std::fs::remove_dir_all(&dir).ok();
}

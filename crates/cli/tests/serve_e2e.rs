//! End-to-end test of `mei serve`: spawn the real binary on an ephemeral
//! port, hammer it from concurrent TCP client threads (head and tail
//! queries, names and raw ids), hot-swap the model over the wire, and shut
//! it down cleanly via the `shutdown` op.

use mei_obs::json::parse;
use mei_obs::JsonValue;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn mei_ok(args: &[&str]) {
    let o = Command::new(env!("CARGO_BIN_EXE_mei"))
        .args(args)
        .output()
        .expect("failed to spawn mei");
    assert!(
        o.status.success(),
        "mei {args:?} failed: {}",
        String::from_utf8_lossy(&o.stderr)
    );
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mei_serve_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts `mei serve` on port 0 and parses the bound address from its
/// first stdout line (`serving on 127.0.0.1:PORT (epoch 0)`). The stdout
/// reader is returned so the pipe stays open for the server's later
/// prints (dropping it would EPIPE the process at shutdown).
fn spawn_server(
    data: &str,
    model: &str,
    extra: &[&str],
) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mei"))
        .args([
            "serve", "--dataset", data, "--model-file", model, "--addr", "127.0.0.1:0",
            "--workers", "2",
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("failed to spawn mei serve");
    let stdout = child.stdout.take().unwrap();
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).unwrap();
    let addr = banner
        .strip_prefix("serving on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_owned();
    (child, addr, reader)
}

fn roundtrip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> JsonValue {
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    parse(response.trim_end()).unwrap_or_else(|e| panic!("bad response {response:?}: {e}"))
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    // The banner prints just before `wait()`; retry briefly in case the
    // accept loop is not yet parked.
    for _ in 0..50 {
        if let Ok(stream) = TcpStream::connect(addr) {
            let reader = BufReader::new(stream.try_clone().unwrap());
            return (stream, reader);
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("could not connect to {addr}");
}

#[test]
fn serve_answers_concurrent_clients_swaps_and_shuts_down() {
    let dir = workdir("roundtrip");
    let data = dir.join("data");
    let data_s = data.to_str().unwrap().to_owned();
    mei_ok(&["generate", "--out", &data_s, "--scale", "tiny", "--seed", "5"]);
    let model = dir.join("model.bin");
    let model_s = model.to_str().unwrap().to_owned();
    mei_ok(&[
        "train", "--dataset", &data_s, "--out", &model_s, "--model", "complex", "--epochs", "3",
        "--dim", "8", "--quiet", "true",
    ]);
    // A second checkpoint (different seed → different parameters) to swap in.
    let model2 = dir.join("model2.bin");
    let model2_s = model2.to_str().unwrap().to_owned();
    mei_ok(&[
        "train", "--dataset", &data_s, "--out", &model2_s, "--model", "complex", "--epochs", "3",
        "--dim", "8", "--seed", "9", "--quiet", "true",
    ]);

    let (mut child, addr, mut server_stdout) = spawn_server(&data_s, &model_s, &[]);

    // Concurrent clients: head + tail queries by name and by raw id.
    let clients: Vec<_> = (0..3)
        .map(|t: u32| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let (mut w, mut r) = connect(&addr);
                for i in 0..20u32 {
                    let side = if (t + i).is_multiple_of(2) { "tail" } else { "head" };
                    let line = if i % 2 == 0 {
                        format!(
                            r#"{{"op":"predict","side":"{side}","anchor":"synset_{:06}","relation":"_hyponym_0","k":4,"id":{i}}}"#,
                            (t * 7 + i) % 200
                        )
                    } else {
                        format!(
                            r#"{{"op":"predict","side":"{side}","anchor":{},"relation":0,"k":4,"id":{i}}}"#,
                            (t * 7 + i) % 200
                        )
                    };
                    let v = roundtrip(&mut w, &mut r, &line);
                    assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)), "line {line}");
                    assert_eq!(v.get("id").and_then(|x| x.as_usize()), Some(i as usize));
                    assert_eq!(
                        v.get("results").and_then(|x| x.as_arr()).map(|a| a.len()),
                        Some(4)
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let (mut w, mut r) = connect(&addr);

    // Stats reflect the traffic: 3 clients × 20 requests, some cached.
    let stats = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
    assert_eq!(stats.get("ok"), Some(&JsonValue::Bool(true)));
    assert_eq!(stats.get("epoch").and_then(|x| x.as_usize()), Some(0));
    let requests = stats
        .get("metrics")
        .and_then(|m| m.get("serve/requests"))
        .and_then(|c| c.get("value"))
        .and_then(|v| v.as_usize())
        .unwrap();
    assert_eq!(requests, 60);

    // Baseline answer, then hot-swap to the second checkpoint.
    let q = r#"{"op":"predict","side":"tail","anchor":"synset_000001","relation":"_hyponym_0","k":5}"#;
    let before = roundtrip(&mut w, &mut r, q);
    assert_eq!(before.get("epoch").and_then(|x| x.as_usize()), Some(0));

    let swap = roundtrip(&mut w, &mut r, &format!(r#"{{"op":"swap","model_file":"{model2_s}"}}"#));
    assert_eq!(swap.get("ok"), Some(&JsonValue::Bool(true)), "{swap:?}");
    assert_eq!(swap.get("epoch").and_then(|x| x.as_usize()), Some(1));

    // Same query now answers at epoch 1, uncached (the swap invalidated
    // the cache), with different scores (different parameters).
    let after = roundtrip(&mut w, &mut r, q);
    assert_eq!(after.get("epoch").and_then(|x| x.as_usize()), Some(1));
    assert_eq!(after.get("cached"), Some(&JsonValue::Bool(false)));
    let score = |v: &JsonValue| {
        v.get("results").and_then(|x| x.as_arr()).unwrap()[0].get("score").and_then(|s| s.as_f64())
    };
    assert_ne!(score(&before), score(&after));

    // Swapping a garbage file is rejected and the epoch stays put.
    let junk = dir.join("junk.bin");
    std::fs::write(&junk, b"definitely not a model").unwrap();
    let bad = roundtrip(
        &mut w,
        &mut r,
        &format!(r#"{{"op":"swap","model_file":"{}"}}"#, junk.to_str().unwrap()),
    );
    assert_eq!(bad.get("ok"), Some(&JsonValue::Bool(false)));
    let still = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
    assert_eq!(still.get("epoch").and_then(|x| x.as_usize()), Some(1));

    // Clean shutdown over the wire: the op is acknowledged and the
    // process exits on its own with status 0.
    let ack = roundtrip(&mut w, &mut r, r#"{"op":"shutdown"}"#);
    assert_eq!(ack.get("ok"), Some(&JsonValue::Bool(true)));
    let status = child.wait().expect("server did not exit");
    assert!(status.success(), "server exited with {status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut server_stdout, &mut rest).unwrap();
    assert!(rest.contains("server stopped"), "missing shutdown line in {rest:?}");

    std::fs::remove_dir_all(&dir).ok();
}

/// `mei serve --screen K --screen-threads N --precompute-hot N`: the
/// screened path answers over the wire, the stats endpoint reports the
/// screen config, and a hot query is served from the precomputed cache
/// right after a swap.
#[test]
fn serve_screened_with_hot_precompute() {
    let dir = workdir("screened");
    let data = dir.join("data");
    let data_s = data.to_str().unwrap().to_owned();
    mei_ok(&["generate", "--out", &data_s, "--scale", "tiny", "--seed", "6"]);
    let model = dir.join("model.bin");
    let model_s = model.to_str().unwrap().to_owned();
    mei_ok(&[
        "train", "--dataset", &data_s, "--out", &model_s, "--model", "complex", "--epochs", "2",
        "--dim", "8", "--quiet", "true",
    ]);
    let model2 = dir.join("model2.bin");
    let model2_s = model2.to_str().unwrap().to_owned();
    mei_ok(&[
        "train", "--dataset", &data_s, "--out", &model2_s, "--model", "complex", "--epochs", "2",
        "--dim", "8", "--seed", "13", "--quiet", "true",
    ]);

    let (mut child, addr, _server_stdout) = spawn_server(
        &data_s,
        &model_s,
        &["--screen", "64", "--screen-threads", "2", "--precompute-hot", "4"],
    );
    let (mut w, mut r) = connect(&addr);

    let stats = roundtrip(&mut w, &mut r, r#"{"op":"stats"}"#);
    let screen = stats.get("screen").expect("stats must report the screen config");
    assert_eq!(screen.get("enabled"), Some(&JsonValue::Bool(true)));
    assert_eq!(screen.get("screen_k").and_then(|x| x.as_usize()), Some(64));
    assert_eq!(screen.get("threads").and_then(|x| x.as_usize()), Some(2));
    assert_eq!(screen.get("precompute_hot").and_then(|x| x.as_usize()), Some(4));

    // Heat up one query identity, then swap; the hot key must come back
    // cached at the new epoch (precomputed during the swap).
    let q = r#"{"op":"predict","side":"tail","anchor":"synset_000002","relation":"_hyponym_0","k":5}"#;
    for _ in 0..5 {
        let v = roundtrip(&mut w, &mut r, q);
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)), "{v:?}");
        assert_eq!(v.get("results").and_then(|x| x.as_arr()).map(|a| a.len()), Some(5));
    }
    let swap = roundtrip(&mut w, &mut r, &format!(r#"{{"op":"swap","model_file":"{model2_s}"}}"#));
    assert_eq!(swap.get("ok"), Some(&JsonValue::Bool(true)), "{swap:?}");
    let after = roundtrip(&mut w, &mut r, q);
    assert_eq!(after.get("epoch").and_then(|x| x.as_usize()), Some(1));
    assert_eq!(
        after.get("cached"),
        Some(&JsonValue::Bool(true)),
        "hot key should be precomputed on swap: {after:?}"
    );

    let ack = roundtrip(&mut w, &mut r, r#"{"op":"shutdown"}"#);
    assert_eq!(ack.get("ok"), Some(&JsonValue::Bool(true)));
    let status = child.wait().expect("server did not exit");
    assert!(status.success(), "server exited with {status:?}");
    std::fs::remove_dir_all(&dir).ok();
}

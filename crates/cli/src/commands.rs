//! Implementations of the `mei` subcommands.

use std::error::Error;

use std::sync::Arc;

use mei_core::serialize::{load_model, load_model_mapped, save_model};
use mei_core::{LossKind, LrDecayMode, MultiEmbedModel, SamplingStrategy, TrainConfig, Trainer, WeightPreset};
use mei_eval::ranking::{evaluate_with_stats, top_k};
use mei_eval::Side;
use mei_eval::{categorize_relations, labeled_with_negatives, mrr_by_category, EvalConfig, TripleClassifier};
use mei_obs::{ConsoleObserver, EvalRecord, FanoutObserver, JsonlObserver, TrainObserver};
use mei_kg::analysis::{detect_inverse_pairs, profile_relations};
use mei_kg::io::{load_benchmark_dir, save_benchmark_dir, ColumnOrder};
use mei_kg::{Dataset, EntityId, RelationId, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::Args;

/// CLI usage text.
pub const USAGE: &str = "\
mei — multi-embedding interaction knowledge graph embedding

subcommands:
  generate --out DIR [--kind synthwn|synthfb|synthwnrr|synthfb237|recsys|random]
           [--scale tiny|small|full] [--seed N]
  stats    --dataset DIR [--order hrt|htr]
  train    --dataset DIR --out model.bin [--model NAME] [--dim N] [--epochs N]
           [--lr F] [--batch N] [--seed N] [--sampling uniform|bern|kvsall]
           [--loss logistic|softmax-ce] [--label-smooth F] [--quiet true]
           [--lr-decay F] [--lr-decay-mode checkpoint|epoch]
           [--eval-every N] [--metrics-out run.jsonl] [--log-every N]
           [--checkpoint train.ckpt] [--checkpoint-every N] [--resume train.ckpt]
           [--grad-path legacy|blocked] [--threads N]
           [--bt-k K --bt-ce CE --bt-cr CR [--bt-init F]]   (block-term MEI)
           [--dropout F] [--input-dropout F] [--batch-norm true]  (kvsall only)
  eval     --dataset DIR --model-file model.bin [--split test|valid]
           [--categories true] [--classification true] [--metrics-out run.jsonl]
  predict  --dataset DIR --model-file model.bin --relation NAME [--topk K]
           (--head NAME to rank tails | --tail NAME to rank heads)
  serve    --dataset DIR --model-file model.bin [--addr HOST:PORT] [--workers N]
           [--max-batch N] [--cache-shards N] [--cache-capacity N] [--cache true|false]
           [--max-queue N] [--read-timeout-ms N] [--write-timeout-ms N]
           [--max-line-bytes N] [--metrics-out serve.jsonl]
           [--screen K] [--screen-threads N] [--precompute-hot N]
  export   --dataset DIR --model-file model.bin --out embeddings.tsv
  models   list available model presets

run `mei models` for the preset names accepted by --model.
`mei serve` answers newline-delimited JSON over TCP; see DESIGN.md §8.
`mei train --resume` continues a crashed run bitwise-identically from a
--checkpoint file; see DESIGN.md §9.
`mei train --grad-path` selects the gradient machinery (default blocked);
both paths are bit-identical — see DESIGN.md §10.
`mei train --threads` caps the training worker pool (default: all cores);
any value produces bit-identical results — see DESIGN.md §11.
`mei train --sampling kvsall` scores each batch group against all entities
with the full-softmax cross-entropy loss (implies --loss softmax-ce);
see DESIGN.md §12.
`mei serve --screen K` screens candidates through the per-row int8
quantized pass and rescores the top K survivors exactly (0 = exact
serving); `--precompute-hot N` refreshes the N hottest queries into the
result cache on every snapshot swap — see DESIGN.md §13.
`mei train --model block-term` (or any --bt-* flag) trains the MEI
block-term family: K partitions of Ce-dim entity / Cr-dim relation
blocks contracted through a learned core tensor; K=1 with Ce=Cr=n is
bitwise-identical to the learned-ω trilinear model — see DESIGN.md §17.
`mei train --dropout/--input-dropout/--batch-norm` add the ConvE-style
training regularizers on the k-vs-all path; eval and serving apply the
norm's running statistics automatically — see DESIGN.md §17.
`mei generate --kind synthwnrr|synthfb237` build the leakage-free
WN18RR/FB15k-237-shaped benchmarks (--scale is ignored for these).";

type CmdResult = Result<(), Box<dyn Error>>;

fn column_order(args: &Args) -> Result<ColumnOrder, Box<dyn Error>> {
    match args.get("order").unwrap_or("hrt") {
        "hrt" => Ok(ColumnOrder::HeadRelTail),
        "htr" => Ok(ColumnOrder::HeadTailRel),
        other => Err(format!("unknown --order {other:?} (expected hrt or htr)").into()),
    }
}

fn load_dataset(args: &Args) -> Result<Dataset, Box<dyn Error>> {
    let dir = args.require("dataset")?;
    Ok(load_benchmark_dir(dir, column_order(args)?)?)
}

fn preset_by_name(name: &str) -> Option<WeightPreset> {
    let norm = name.to_ascii_lowercase().replace(['-', '_', ' '], "");
    WeightPreset::all().iter().copied().find(|p| {
        p.name().to_ascii_lowercase().replace(['-', '_', ' ', '.'], "").starts_with(&norm)
            && !norm.is_empty()
    })
}

/// `mei models`.
pub fn models() -> CmdResult {
    println!("{:<34} {:>3} {:>6}", "preset", "n", "terms");
    for p in WeightPreset::all() {
        println!("{:<34} {:>3} {:>6}", p.name(), p.n(), p.weight_vector().terms().len());
    }
    Ok(())
}

/// `mei generate`.
pub fn generate(args: &Args) -> CmdResult {
    use mei_datagen::{RecsysConfig, SynthWnConfig, SynthWnScale};
    let out = args.require("out")?;
    let seed: u64 = args.get_parsed("seed", 0)?;
    let scale = match args.get("scale").unwrap_or("small") {
        "tiny" => SynthWnScale::Tiny,
        "small" => SynthWnScale::Small,
        "full" => SynthWnScale::Full,
        other => return Err(format!("unknown --scale {other:?}").into()),
    };
    let dataset = match args.get("kind").unwrap_or("synthwn") {
        "synthwn" => SynthWnConfig::at_scale(scale, seed).generate(),
        "recsys" => RecsysConfig { seed, ..RecsysConfig::default() }.generate().dataset,
        "synthfb" => mei_datagen::SynthFbConfig { seed, ..mei_datagen::SynthFbConfig::default() }
            .generate(),
        "synthwnrr" => {
            mei_datagen::SynthWnRrConfig { seed, ..mei_datagen::SynthWnRrConfig::default() }
                .generate()
        }
        "synthfb237" => {
            let mut cfg = mei_datagen::SynthFb237Config::default();
            cfg.base.seed = seed;
            cfg.generate()
        }
        "random" => mei_datagen::random::random_graph(2000, 18, 30_000, 0.05, 0.05, seed),
        other => return Err(format!("unknown --kind {other:?}").into()),
    };
    save_benchmark_dir(&dataset, out, ColumnOrder::HeadRelTail)?;
    println!("wrote {} to {out}", dataset.stats());
    Ok(())
}

/// `mei stats`.
pub fn stats(args: &Args) -> CmdResult {
    let ds = load_dataset(args)?;
    println!("{}", ds.stats());
    println!("test-train inverse leakage: {:.3}", ds.test_inverse_leakage());
    let all: Vec<Triple> = ds.train.iter().chain(&ds.valid).chain(&ds.test).copied().collect();
    println!("\nrelation profiles:");
    println!(
        "{:<30} {:>8} {:>9} {:>11} {:>11}",
        "relation", "triples", "symmetry", "tails/head", "heads/tail"
    );
    for p in profile_relations(&all) {
        println!(
            "{:<30} {:>8} {:>9.2} {:>11.2} {:>11.2}",
            ds.relations.name(p.relation.0).unwrap_or("?"),
            p.count,
            p.symmetry,
            p.tails_per_head,
            p.heads_per_tail
        );
    }
    let pairs = detect_inverse_pairs(&all, ds.num_relations(), 0.8);
    if !pairs.is_empty() {
        println!("\ninverse pairs (overlap ≥ 0.8):");
        for (a, b, overlap) in pairs {
            println!(
                "  {} <-> {}  ({overlap:.2})",
                ds.relations.name(a.0).unwrap_or("?"),
                ds.relations.name(b.0).unwrap_or("?")
            );
        }
    }
    Ok(())
}

/// `mei train`.
pub fn train(args: &Args) -> CmdResult {
    let ds = load_dataset(args)?;
    let out = args.require("out")?;
    let model_name = args.get("model").unwrap_or("complex");
    // Any --bt-* flag (or --model block-term) selects the MEI block-term
    // family instead of a fixed-ω preset; see DESIGN.md §17.
    let block_term = matches!(model_name, "block-term" | "blockterm" | "mei")
        || args.get("bt-k").is_some()
        || args.get("bt-ce").is_some()
        || args.get("bt-cr").is_some();
    let bt_shape = if block_term {
        let shape = mei_core::BlockTermShape {
            k: args.get_parsed("bt-k", 4usize)?,
            ce: args.get_parsed("bt-ce", 2usize)?,
            cr: args.get_parsed("bt-cr", 2usize)?,
        };
        if shape.k == 0 || shape.ce == 0 || shape.cr == 0 {
            return Err("--bt-k, --bt-ce and --bt-cr must all be >= 1".into());
        }
        Some(shape)
    } else {
        None
    };
    let preset = if block_term {
        None
    } else {
        Some(
            preset_by_name(model_name)
                .ok_or_else(|| format!("unknown model {model_name:?}; see `mei models`"))?,
        )
    };
    let n = match bt_shape {
        Some(shape) => shape.n(),
        None => preset.expect("preset set when not block-term").effective_interaction().0,
    };
    let dim: usize = args.get_parsed("dim", (128 / n).max(1))?;
    let sampling = match args.get("sampling").unwrap_or("uniform") {
        // "negative" is an alias for the default per-triple sampled path.
        "uniform" | "negative" => SamplingStrategy::Uniform,
        "bern" | "bernoulli" => SamplingStrategy::Bernoulli,
        "kvsall" | "1-n" => SamplingStrategy::KvsAll,
        other => return Err(format!("unknown --sampling {other:?}").into()),
    };
    // kvsall trains with the full-softmax loss; the flags must agree, and
    // --loss defaults to whatever the sampling mode implies.
    let kvsall = sampling == SamplingStrategy::KvsAll;
    let label_smooth: f32 = args.get_parsed("label-smooth", 0.0f32)?;
    if !(0.0..1.0).contains(&label_smooth) {
        return Err(format!("--label-smooth must be in [0, 1), got {label_smooth}").into());
    }
    let loss = match args.get("loss").unwrap_or(if kvsall { "softmax-ce" } else { "logistic" }) {
        "softmax-ce" | "softmax" => {
            if !kvsall {
                return Err("--loss softmax-ce requires --sampling kvsall".into());
            }
            LossKind::SoftmaxCrossEntropy { label_smooth }
        }
        "logistic" => {
            if kvsall {
                return Err("--sampling kvsall requires --loss softmax-ce".into());
            }
            LossKind::Logistic
        }
        other => return Err(format!("unknown --loss {other:?}").into()),
    };
    if label_smooth > 0.0 && !matches!(loss, LossKind::SoftmaxCrossEntropy { .. }) {
        return Err("--label-smooth only applies to --loss softmax-ce".into());
    }
    // ConvE-style regularizers; the whole stack rides the k-vs-all path.
    let dropout: f32 = args.get_parsed("dropout", 0.0f32)?;
    let input_dropout: f32 = args.get_parsed("input-dropout", 0.0f32)?;
    let batch_norm: bool = args.get_parsed("batch-norm", false)?;
    if !(0.0..1.0).contains(&dropout) || !(0.0..1.0).contains(&input_dropout) {
        return Err("--dropout/--input-dropout must be in [0, 1)".into());
    }
    if (dropout > 0.0 || input_dropout > 0.0 || batch_norm) && !kvsall {
        return Err("--dropout/--input-dropout/--batch-norm require --sampling kvsall".into());
    }
    let lr_decay: f32 = args.get_parsed("lr-decay", 1.0f32)?;
    let lr_decay_mode = match args.get("lr-decay-mode").unwrap_or("checkpoint") {
        "checkpoint" => LrDecayMode::Checkpoint,
        "epoch" => LrDecayMode::Epoch,
        other => return Err(format!("unknown --lr-decay-mode {other:?}").into()),
    };
    // --checkpoint-every defaults to 10 once a checkpoint path is given,
    // so `--checkpoint train.ckpt` alone already makes the run resumable.
    let checkpoint_path = args.get("checkpoint").map(std::path::PathBuf::from);
    let checkpoint_every: usize =
        args.get_parsed("checkpoint-every", if checkpoint_path.is_some() { 10 } else { 0 })?;
    if checkpoint_every > 0 && checkpoint_path.is_none() {
        return Err("--checkpoint-every needs --checkpoint PATH".into());
    }
    // Both gradient paths are bit-identical (DESIGN.md §10); the flag
    // exists for benchmarking and as an escape hatch.
    let grad_path: mei_core::GradPath = args
        .get("grad-path")
        .map(str::parse)
        .transpose()
        .map_err(|e| format!("bad --grad-path: {e}"))?
        .unwrap_or_default();
    let config = TrainConfig {
        max_epochs: args.get_parsed("epochs", 500)?,
        batch_size: args.get_parsed("batch", 1024)?,
        learning_rate: args.get_parsed("lr", 1e-2f32)?,
        l2_lambda: args.get_parsed("l2", 1e-3f32)?,
        seed: args.get_parsed("seed", 0)?,
        sampling,
        loss,
        lr_decay,
        lr_decay_mode,
        eval_every: args.get_parsed("eval-every", 50)?,
        patience: 100,
        verbose: !args.get_parsed("quiet", false)?,
        checkpoint_every,
        checkpoint_path,
        grad_path,
        dropout,
        input_dropout,
        batch_norm,
        // Speed knob only: the parallel schedule is bit-stable across
        // thread counts (DESIGN.md §11).
        threads: args.get_parsed("threads", 0)?,
        ..TrainConfig::default()
    };

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut model = match bt_shape {
        Some(shape) => {
            let core_init: f32 = args.get_parsed("bt-init", 0.5f32)?;
            let m = MultiEmbedModel::block_term(
                ds.num_entities(),
                ds.num_relations(),
                shape,
                dim,
                core_init,
                &mut rng,
            );
            println!(
                "training block-term MEI (K = {}, Ce = {}, Cr = {}, D = {dim}, {} parameters) on {}",
                shape.k,
                shape.ce,
                shape.cr,
                m.num_params(),
                ds.stats()
            );
            m
        }
        None => {
            let preset = preset.expect("preset set when not block-term");
            let (_, omega) = preset.effective_interaction();
            let cfg = mei_core::ModelConfig {
                num_entities: ds.num_entities(),
                num_relations: ds.num_relations(),
                n,
                dim,
            };
            let m = MultiEmbedModel::with_fixed_weights(cfg, omega, &mut rng);
            println!(
                "training {} (n = {n}, D = {dim}, {} parameters) on {}",
                preset.name(),
                m.num_params(),
                ds.stats()
            );
            m
        }
    };
    let filter = ds.filter_store();
    let mut trainer = Trainer::new(config);
    let mut sinks: Vec<Arc<dyn TrainObserver>> = Vec::new();
    if let Some(path) = args.get("metrics-out") {
        let sink = JsonlObserver::create(path)
            .map_err(|e| format!("cannot open --metrics-out {path}: {e}"))?;
        sinks.push(Arc::new(sink));
        println!("writing per-epoch metrics to {path}");
    }
    let log_every: usize = args.get_parsed("log-every", 0)?;
    if log_every > 0 {
        sinks.push(Arc::new(ConsoleObserver::new(log_every)));
    }
    trainer = match sinks.len() {
        0 => trainer,
        1 => trainer.with_observer(sinks.pop().expect("len checked")),
        _ => trainer.with_observer(Arc::new(
            sinks.into_iter().fold(FanoutObserver::new(), FanoutObserver::with),
        )),
    };
    let report = match args.get("resume") {
        Some(ckpt) => {
            let cp = mei_core::load_checkpoint(ckpt)
                .map_err(|e| format!("cannot resume from {ckpt}: {e}"))?;
            println!("resuming from {ckpt} at epoch {}", cp.epoch);
            trainer
                .resume(&mut model, &ds, &filter, cp)
                .map_err(|e| format!("cannot resume from {ckpt}: {e}"))?
        }
        None => trainer.train(&mut model, &ds, &filter),
    };
    println!(
        "done: {} epochs, best validation MRR {:.4} at epoch {}",
        report.epochs_run, report.best_valid_mrr, report.best_epoch
    );
    save_model(&model, out)?;
    println!("model saved to {out}");
    Ok(())
}

/// `mei eval`.
pub fn eval(args: &Args) -> CmdResult {
    let ds = load_dataset(args)?;
    let model = load_model(args.require("model-file")?)?;
    if model.config().num_entities != ds.num_entities() {
        return Err(format!(
            "model has {} entities but dataset has {} — wrong pairing?",
            model.config().num_entities,
            ds.num_entities()
        )
        .into());
    }
    let split_name = args.get("split").unwrap_or("test");
    let split: &[Triple] = match split_name {
        "test" => &ds.test,
        "valid" => &ds.valid,
        "train" => &ds.train,
        other => return Err(format!("unknown --split {other:?}").into()),
    };
    let filter = ds.filter_store();
    let eval_cfg = EvalConfig::default();
    let (raw, filtered, stats) = evaluate_with_stats(&model, split, &filter, &eval_cfg);
    println!("filtered: {filtered}");
    println!("raw:      {raw}");
    println!(
        "{} queries in {:.2}s ({:.0} queries/sec, tie-rate {:.4})",
        stats.queries, stats.wall_secs, stats.queries_per_sec, stats.tie_rate
    );

    if let Some(path) = args.get("metrics-out") {
        let sink = JsonlObserver::create(path)
            .map_err(|e| format!("cannot open --metrics-out {path}: {e}"))?;
        sink.on_eval(&EvalRecord {
            epoch: 0,
            split: split_name.to_owned(),
            queries: stats.queries,
            queries_per_sec: stats.queries_per_sec,
            mrr: filtered.mrr,
            mrr_head_side: filtered.mrr_head_side,
            mrr_tail_side: filtered.mrr_tail_side,
            tie_rate: stats.tie_rate,
            tie_policy: eval_cfg.tie_policy.name().to_owned(),
            head_ranks: stats.head_ranks,
            tail_ranks: stats.tail_ranks,
            wall_secs: stats.wall_secs,
        });
        println!("metrics written to {path}");
    }

    if args.get_parsed("categories", false)? {
        let cats = categorize_relations(&ds.train, ds.num_relations(), 1.5);
        println!("\nfiltered MRR by relation category:");
        let mut rows: Vec<_> = mrr_by_category(&filtered, &cats).into_iter().collect();
        rows.sort_by_key(|(c, _)| c.label());
        for (cat, mrr) in rows {
            println!("  {:<4} {mrr:.3}", cat.label());
        }
    }

    if args.get_parsed("classification", false)? {
        let mut rng = StdRng::seed_from_u64(7);
        let fit_set = labeled_with_negatives(&mut rng, &ds.valid, ds.num_entities(), &filter);
        let test_set = labeled_with_negatives(&mut rng, split, ds.num_entities(), &filter);
        let clf = TripleClassifier::fit(&model, &fit_set);
        println!(
            "\ntriple classification accuracy: {:.3} (thresholds fit on valid)",
            clf.accuracy(&model, &test_set)
        );
    }
    Ok(())
}

/// `mei predict`.
pub fn predict(args: &Args) -> CmdResult {
    let ds = load_dataset(args)?;
    let model = load_model(args.require("model-file")?)?;
    let (side, anchor_name) = match (args.get("head"), args.get("tail")) {
        (Some(h), None) => (Side::Tail, h),
        (None, Some(t)) => (Side::Head, t),
        (Some(_), Some(_)) => return Err("pass --head or --tail, not both".into()),
        (None, None) => return Err("missing required argument --head (or --tail)".into()),
    };
    let rel_name = args.require("relation")?;
    let topk: usize = args.get_parsed("topk", 10)?;
    let anchor = ds
        .entities
        .get(anchor_name)
        .ok_or_else(|| format!("unknown entity {anchor_name:?}"))?;
    let relation = ds
        .relations
        .get(rel_name)
        .ok_or_else(|| format!("unknown relation {rel_name:?}"))?;
    let known = ds.train_store();
    let preds = top_k(&model, side, EntityId(anchor), RelationId(relation), topk, &known);
    match side {
        Side::Tail => println!("top-{topk} predicted tails for ({anchor_name}, ?, {rel_name}):"),
        Side::Head => println!("top-{topk} predicted heads for (?, {anchor_name}, {rel_name}):"),
    }
    for (rank, (e, score)) in preds.iter().enumerate() {
        println!(
            "{:>3}. {:<30} score {score:.4}  p(valid) {:.3}",
            rank + 1,
            ds.entities.name(e.0).unwrap_or("?"),
            mei_core::loss::predict_probability(*score)
        );
    }
    Ok(())
}

/// `mei serve`.
pub fn serve(args: &Args) -> CmdResult {
    use mei_serve::{Engine, ServeConfig, Server, ServerConfig, Snapshot};
    use std::time::Duration;

    let ds = load_dataset(args)?;
    // Serving reads embeddings, never writes them: map the file so a
    // million-entity model starts serving after a checksum pass instead
    // of a gigabyte copy (old formats fall back to an owned read).
    let model = load_model_mapped(args.require("model-file")?)?;
    if model.config().num_entities != ds.num_entities()
        || model.config().num_relations != ds.num_relations()
    {
        return Err(format!(
            "model shape {}x{} (entities x relations) does not match dataset {}x{} — wrong pairing?",
            model.config().num_entities,
            model.config().num_relations,
            ds.num_entities(),
            ds.num_relations()
        )
        .into());
    }
    let defaults = ServeConfig::default();
    // --screen 0 (the default) serves exactly; --screen K enables the
    // quantized screen→rescore path with K survivors per query.
    let screen_k: usize = args.get_parsed("screen", 0)?;
    let screen_threads: usize = args.get_parsed("screen-threads", 1)?;
    let config = ServeConfig {
        // workers: 0 is an engine test mode (nothing drains the queue);
        // a real server always gets at least one.
        workers: args.get_parsed("workers", defaults.workers)?.max(1),
        max_batch: args.get_parsed("max-batch", defaults.max_batch)?,
        cache_shards: args.get_parsed("cache-shards", defaults.cache_shards)?,
        cache_capacity: args.get_parsed("cache-capacity", defaults.cache_capacity)?,
        cache: args.get_parsed("cache", defaults.cache)?,
        max_queue: args.get_parsed("max-queue", defaults.max_queue)?,
        screen: (screen_k > 0)
            .then_some(mei_serve::ScreenParams { screen_k, threads: screen_threads }),
        precompute_hot: args.get_parsed("precompute-hot", defaults.precompute_hot)?,
    };
    let server_defaults = ServerConfig::default();
    // Timeout 0 means "no timeout" for operators who really want the old
    // unbounded behavior.
    let timeout = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
    let default_ms =
        |d: Option<Duration>| d.map(|t| t.as_millis() as u64).unwrap_or(0);
    let server_config = ServerConfig {
        read_timeout: timeout(args.get_parsed(
            "read-timeout-ms",
            default_ms(server_defaults.read_timeout),
        )?),
        write_timeout: timeout(args.get_parsed(
            "write-timeout-ms",
            default_ms(server_defaults.write_timeout),
        )?),
        max_line_bytes: args.get_parsed("max-line-bytes", server_defaults.max_line_bytes)?,
    };
    // Known-true triples from every split are excluded from answers: the
    // server predicts *new* edges (the filtered protocol, applied online).
    let snapshot =
        Snapshot::new(model, ds.entities.clone(), ds.relations.clone(), ds.filter_store());
    let engine = Arc::new(Engine::start(snapshot, config));
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let server = Server::start_with(Arc::clone(&engine), addr, server_config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    // Scripts (and the e2e test) parse this line for the ephemeral port.
    println!("serving on {} (epoch {})", server.local_addr(), engine.epoch());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.wait();
    if let Some(path) = args.get("metrics-out") {
        let line = engine.metrics_snapshot().to_json();
        std::fs::write(path, line + "\n")
            .map_err(|e| format!("cannot write --metrics-out {path}: {e}"))?;
        println!("serving metrics written to {path}");
    }
    println!("server stopped");
    Ok(())
}

/// `mei export`.
pub fn export(args: &Args) -> CmdResult {
    let ds = load_dataset(args)?;
    let model = load_model(args.require("model-file")?)?;
    let out = args.require("out")?;
    let f = std::fs::File::create(out)?;
    let w = std::io::BufWriter::new(f);
    mei_core::serialize::export_entity_embeddings_tsv(
        &model,
        |e| ds.entities.name(e).unwrap_or("?").to_owned(),
        w,
    )?;
    println!(
        "wrote {} × {} embedding matrix to {out}",
        model.config().num_entities,
        model.config().n * model.config().dim
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_lookup_is_forgiving() {
        assert_eq!(preset_by_name("complex"), Some(WeightPreset::ComplEx));
        assert_eq!(preset_by_name("ComplEx"), Some(WeightPreset::ComplEx));
        assert_eq!(preset_by_name("distmult"), Some(WeightPreset::DistMult));
        assert_eq!(preset_by_name("cph"), Some(WeightPreset::Cph));
        assert_eq!(preset_by_name("quaternion"), Some(WeightPreset::Quaternion));
        assert_eq!(preset_by_name("octonion"), Some(WeightPreset::Octonion));
        assert_eq!(preset_by_name("no-such-model"), None);
        assert_eq!(preset_by_name(""), None);
    }

    #[test]
    fn cp_resolves_to_cp_not_cph() {
        assert_eq!(preset_by_name("cp"), Some(WeightPreset::Cp));
    }
}

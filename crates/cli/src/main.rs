//! `mei` — the user-facing command line for the multi-embedding
//! interaction library.
//!
//! ```text
//! mei generate --out DIR [--kind synthwn|synthfb|synthwnrr|synthfb237|recsys|random]
//!              [--scale tiny|small|full] [--seed N]
//! mei stats    --dataset DIR [--order hrt|htr]
//! mei train    --dataset DIR --out model.bin [--model NAME] [--dim N]
//!              [--epochs N] [--lr F] [--batch N] [--seed N] [--sampling uniform|bern|kvsall]
//!              [--bt-k K --bt-ce CE --bt-cr CR]  (block-term MEI family, DESIGN.md §17)
//!              [--dropout F] [--input-dropout F] [--batch-norm true]  (kvsall regularizers)
//! mei eval     --dataset DIR --model-file model.bin [--split test|valid]
//!              [--categories true] [--classification true]
//! mei predict  --dataset DIR --model-file model.bin --head NAME --relation NAME [--topk K]
//! mei serve    --dataset DIR --model-file model.bin [--addr HOST:PORT] [--workers N]
//! mei export   --dataset DIR --model-file model.bin --out embeddings.tsv
//! mei models   (list available model presets)
//! ```

mod args;
mod commands;

use args::Args;

fn main() {
    let parsed = Args::parse(std::env::args().skip(1));
    let result = match parsed {
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", commands::USAGE);
            std::process::exit(2);
        }
        Ok(args) => match args.command.as_str() {
            "generate" => commands::generate(&args),
            "stats" => commands::stats(&args),
            "train" => commands::train(&args),
            "eval" => commands::eval(&args),
            "predict" => commands::predict(&args),
            "serve" => commands::serve(&args),
            "export" => commands::export(&args),
            "models" => commands::models(),
            "help" | "--help" | "-h" => {
                println!("{}", commands::USAGE);
                Ok(())
            }
            other => {
                eprintln!("error: unknown subcommand {other:?}\n");
                eprintln!("{}", commands::USAGE);
                std::process::exit(2);
            }
        },
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

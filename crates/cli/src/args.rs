//! A tiny dependency-free argument parser for the `mei` CLI.
//!
//! Flags are `--name value` pairs after a subcommand; the parser collects
//! them into a map with typed accessors and reports unknown or valueless
//! flags as errors instead of panicking.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--flag value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
}

/// Argument-parsing errors, rendered to the user by `main`.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    MissingCommand,
    /// `--flag` appeared with no following value.
    MissingValue(String),
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
    /// A flag's value failed to parse.
    BadValue {
        /// Which flag.
        flag: String,
        /// The offending value.
        value: String,
        /// Expected type, for the message.
        expected: &'static str,
    },
    /// A required flag is absent.
    MissingFlag(&'static str),
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "missing subcommand"),
            ArgsError::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            ArgsError::UnexpectedPositional(a) => write!(f, "unexpected argument: {a}"),
            ArgsError::BadValue { flag, value, expected } => {
                write!(f, "flag {flag}: expected {expected}, got {value:?}")
            }
            ArgsError::MissingFlag(flag) => write!(f, "required flag --{flag} is missing"),
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgsError> {
        let mut iter = args.into_iter();
        let command = iter.next().ok_or(ArgsError::MissingCommand)?;
        let mut flags = HashMap::new();
        while let Some(a) = iter.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = iter.next().ok_or_else(|| ArgsError::MissingValue(a.clone()))?;
                flags.insert(name.to_owned(), value);
            } else {
                return Err(ArgsError::UnexpectedPositional(a));
            }
        }
        Ok(Self { command, flags })
    }

    /// Raw string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, name: &'static str) -> Result<&str, ArgsError> {
        self.get(name).ok_or(ArgsError::MissingFlag(name))
    }

    /// Optional typed flag with a default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        name: &'static str,
        default: T,
    ) -> Result<T, ArgsError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                flag: format!("--{name}"),
                value: v.to_owned(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, ArgsError> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse(&["train", "--dim", "64", "--model", "complex"]).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("dim"), Some("64"));
        assert_eq!(a.get_parsed("dim", 0usize).unwrap(), 64);
        assert_eq!(a.require("model").unwrap(), "complex");
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&["eval"]).unwrap();
        assert_eq!(a.get_parsed("epochs", 100usize).unwrap(), 100);
        assert_eq!(a.get("anything"), None);
    }

    #[test]
    fn reports_errors() {
        assert_eq!(parse(&[]).unwrap_err(), ArgsError::MissingCommand);
        assert!(matches!(parse(&["x", "--flag"]), Err(ArgsError::MissingValue(_))));
        assert!(matches!(parse(&["x", "stray"]), Err(ArgsError::UnexpectedPositional(_))));
        let a = parse(&["x", "--dim", "abc"]).unwrap();
        assert!(matches!(a.get_parsed("dim", 1usize), Err(ArgsError::BadValue { .. })));
        assert!(matches!(a.require("missing"), Err(ArgsError::MissingFlag("missing"))));
    }

    #[test]
    fn errors_render_messages() {
        let e = ArgsError::BadValue { flag: "--dim".into(), value: "x".into(), expected: "usize" };
        assert!(e.to_string().contains("--dim"));
        assert!(ArgsError::MissingFlag("out").to_string().contains("--out"));
    }
}

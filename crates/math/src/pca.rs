//! Principal component analysis via power iteration with deflation.
//!
//! §3.2 of the paper proposes using (concatenated) multi-embedding vectors
//! "in visualization or browsing for data analysis". A 2–3 component PCA
//! is the minimal such visualization; power iteration keeps this crate
//! dependency-free and is plenty for embedding matrices with a few hundred
//! columns.

use crate::vecops::{dot, l2_norm, normalize_l2};

/// Result of a PCA fit.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Column means subtracted before projection (length `dim`).
    pub mean: Vec<f32>,
    /// Principal axes, row-major `[num_components × dim]`, unit-norm.
    pub components: Vec<Vec<f32>>,
    /// Variance captured along each axis.
    pub explained_variance: Vec<f32>,
}

impl Pca {
    /// Fits `num_components` principal axes to `rows` (each of length
    /// `dim`) using power iteration with deflation.
    ///
    /// # Panics
    /// Panics if `rows` is empty, rows have inconsistent lengths, or
    /// `num_components == 0`.
    pub fn fit(rows: &[&[f32]], num_components: usize, iterations: usize, seed: u64) -> Self {
        assert!(!rows.is_empty(), "PCA needs at least one row");
        assert!(num_components >= 1, "need at least one component");
        let dim = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == dim), "inconsistent row lengths");
        let n = rows.len();

        // Column means.
        let mut mean = vec![0.0f32; dim];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(*r) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }

        // Centered data, deflated in place as components are extracted.
        let mut centered: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| r.iter().zip(&mean).map(|(v, m)| v - m).collect())
            .collect();

        let mut components = Vec::with_capacity(num_components);
        let mut explained = Vec::with_capacity(num_components);
        // Deterministic pseudo-random start vector from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f32 / (1u64 << 53) as f32) - 0.0
        };

        for _ in 0..num_components.min(dim) {
            let mut axis: Vec<f32> = (0..dim).map(|_| next() + 1e-3).collect();
            normalize_l2(&mut axis);
            for _ in 0..iterations {
                // axis ← Xᵀ·(X·axis), normalized.
                let mut new_axis = vec![0.0f32; dim];
                for row in &centered {
                    let p = dot(row, &axis);
                    for (na, rv) in new_axis.iter_mut().zip(row) {
                        *na += p * rv;
                    }
                }
                if l2_norm(&new_axis) < 1e-12 {
                    break; // no variance left
                }
                normalize_l2(&mut new_axis);
                axis = new_axis;
            }
            // Variance along the axis.
            let var = centered
                .iter()
                .map(|row| {
                    let p = dot(row, &axis);
                    f64::from(p) * f64::from(p)
                })
                .sum::<f64>() as f32
                / n as f32;
            // Deflate.
            for row in &mut centered {
                let p = dot(row, &axis);
                for (rv, av) in row.iter_mut().zip(&axis) {
                    *rv -= p * av;
                }
            }
            components.push(axis);
            explained.push(var);
        }
        Self { mean, components, explained_variance: explained }
    }

    /// Projects a row onto the fitted axes.
    pub fn transform(&self, row: &[f32]) -> Vec<f32> {
        let centered: Vec<f32> = row.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
        self.components.iter().map(|axis| dot(&centered, axis)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Points spread along (1, 1)/√2 with small noise in (1, −1).
        let raw: Vec<[f32; 2]> = (0..100)
            .map(|i| {
                let t = (i as f32 - 50.0) / 10.0;
                let noise = ((i * 37 % 11) as f32 - 5.0) / 100.0;
                [t + noise, t - noise]
            })
            .collect();
        let rows: Vec<&[f32]> = raw.iter().map(|r| &r[..]).collect();
        let pca = Pca::fit(&rows, 2, 50, 42);
        let axis = &pca.components[0];
        // First axis ≈ ±(0.707, 0.707).
        assert!((axis[0].abs() - 0.707).abs() < 0.02, "{axis:?}");
        assert!((axis[1].abs() - 0.707).abs() < 0.02);
        assert!(pca.explained_variance[0] > pca.explained_variance[1] * 10.0);
    }

    #[test]
    fn components_are_orthonormal() {
        let raw: Vec<[f32; 4]> = (0..60)
            .map(|i| {
                let x = i as f32 / 10.0;
                [x, 2.0 * x + (i % 7) as f32, (i % 5) as f32, 0.5 * x]
            })
            .collect();
        let rows: Vec<&[f32]> = raw.iter().map(|r| &r[..]).collect();
        let pca = Pca::fit(&rows, 3, 60, 1);
        for i in 0..3 {
            assert!((l2_norm(&pca.components[i]) - 1.0).abs() < 1e-4);
            for j in (i + 1)..3 {
                let d = dot(&pca.components[i], &pca.components[j]);
                assert!(d.abs() < 1e-3, "axes {i},{j} not orthogonal: {d}");
            }
        }
    }

    #[test]
    fn transform_centers_data() {
        let raw = [[10.0f32, 20.0], [12.0, 22.0], [8.0, 18.0]];
        let rows: Vec<&[f32]> = raw.iter().map(|r| &r[..]).collect();
        let pca = Pca::fit(&rows, 1, 30, 5);
        // The mean row projects to ~0.
        let proj = pca.transform(&[10.0, 20.0]);
        assert!(proj[0].abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn empty_input_panics() {
        let rows: Vec<&[f32]> = vec![];
        Pca::fit(&rows, 1, 10, 0);
    }

    #[test]
    fn constant_data_yields_zero_variance() {
        let raw = [[1.0f32, 2.0], [1.0, 2.0], [1.0, 2.0]];
        let rows: Vec<&[f32]> = raw.iter().map(|r| &r[..]).collect();
        let pca = Pca::fit(&rows, 1, 10, 3);
        assert!(pca.explained_variance[0] < 1e-9);
    }
}

//! Deterministic training-regularization primitives: counter-based
//! dropout masks and f64 batch-norm moment accumulation.
//!
//! Both exist to keep the k-vs-all regularized training path inside the
//! workspace's bit-determinism contract:
//!
//! * **Dropout masks are counter-based**, not stream-based. A mask
//!   element is a pure function of `(batch seed, global query index,
//!   stream id, element index)` through [`splitmix64`], so the forward
//!   and backward passes regenerate identical masks independently, on
//!   any worker, in any order — no RNG state is threaded through the
//!   parallel region.
//! * **Batch-norm moments accumulate in f64** ([`accumulate_moments`])
//!   and are reduced *sequentially in chunk order* by the caller, so the
//!   batch statistics are a pure function of the batch content — never
//!   of the thread count.

/// SplitMix64: the finalizer used to hash mask counters into uniform
/// 64-bit values. Passes BigCrush as a generator; here it is used purely
/// as a stateless mixing function.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the counter base for one dropout mask from the batch seed, the
/// query's global (batch-wide) index, and a stream id separating the
/// mask kinds (0 = interaction output, 1 = anchor row, 2 = relation row).
#[inline]
pub fn mask_stream_base(seed: u64, query: u64, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(query.wrapping_mul(3).wrapping_add(stream)))
}

/// Fills `mask` with inverted-dropout scale factors: element `e` is
/// `1/(1−p)` with probability `1−p` and `0.0` otherwise, decided by
/// `splitmix64(base + e)`. Writing the scale into the mask lets both the
/// forward (`x ⊙ mask`) and the backward (`g ⊙ mask`) be a single
/// elementwise product.
///
/// ```
/// let mut mask = [0.0f32; 256];
/// mei_math::reg::fill_dropout_mask(42, 0.5, &mut mask);
/// let kept = mask.iter().filter(|v| **v != 0.0).count();
/// assert!(kept > 64 && kept < 192); // ~half survive
/// assert!(mask.iter().all(|v| *v == 0.0 || *v == 2.0));
/// ```
pub fn fill_dropout_mask(base: u64, p: f32, mask: &mut [f32]) {
    debug_assert!((0.0..1.0).contains(&p));
    let scale = 1.0 / (1.0 - p);
    for (e, slot) in mask.iter_mut().enumerate() {
        // Top 24 bits → uniform f32 in [0, 1): exact, no rounding bias.
        let u = (splitmix64(base.wrapping_add(e as u64)) >> 40) as f32 / (1u32 << 24) as f32;
        *slot = if u < p { 0.0 } else { scale };
    }
}

/// `dst = src ⊙ mask` (elementwise).
#[inline]
pub fn apply_mask_into(src: &[f32], mask: &[f32], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), mask.len());
    debug_assert_eq!(src.len(), dst.len());
    for i in 0..dst.len() {
        dst[i] = src[i] * mask[i];
    }
}

/// `buf ⊙= mask` (elementwise, in place).
#[inline]
pub fn apply_mask_in_place(buf: &mut [f32], mask: &[f32]) {
    debug_assert_eq!(buf.len(), mask.len());
    for i in 0..buf.len() {
        buf[i] *= mask[i];
    }
}

/// Accumulates per-feature first and second moments of one row into f64
/// accumulators: `sum[f] += x[f]`, `sumsq[f] += x[f]²`. The caller drives
/// this sequentially in a fixed row order, which keeps the resulting
/// batch statistics independent of the worker count.
#[inline]
pub fn accumulate_moments(x: &[f32], sum: &mut [f64], sumsq: &mut [f64]) {
    debug_assert_eq!(x.len(), sum.len());
    debug_assert_eq!(x.len(), sumsq.len());
    for f in 0..x.len() {
        let v = f64::from(x[f]);
        sum[f] += v;
        sumsq[f] += v * v;
    }
}

/// Finalizes f64 moment sums over `q` rows into f32 per-feature batch
/// `mean`, biased `var` (the normalization denominator uses `q`, matching
/// standard batch-norm), and `istd = 1/√(var + eps)`.
pub fn finalize_moments(
    sum: &[f64],
    sumsq: &[f64],
    q: usize,
    eps: f32,
    mean: &mut [f32],
    var: &mut [f32],
    istd: &mut [f32],
) {
    let qf = q as f64;
    for f in 0..sum.len() {
        let m = sum[f] / qf;
        let v = (sumsq[f] / qf - m * m).max(0.0);
        mean[f] = m as f32;
        var[f] = v as f32;
        istd[f] = 1.0 / (v as f32 + eps).sqrt();
    }
}

/// Batch-norm forward for one row: `out[f] = γ[f]·(x[f]−μ[f])·istd[f] + β[f]`.
#[inline]
pub fn bn_apply(x: &mut [f32], mean: &[f32], istd: &[f32], gamma: &[f32], beta: &[f32]) {
    for f in 0..x.len() {
        x[f] = gamma[f] * ((x[f] - mean[f]) * istd[f]) + beta[f];
    }
}

/// Batch-norm input gradient for one row, in place:
/// `g[f] ← γ[f]·istd[f]·(g[f] − gβ[f]/Q − x̂[f]·gγ[f]/Q)` where
/// `x̂ = (x−μ)·istd` is recomputed from the raw activations and the
/// `gβ/Q`, `gγ/Q` constants were reduced sequentially by the caller.
#[inline]
pub fn bn_backward_row(
    g: &mut [f32],
    x_raw: &[f32],
    mean: &[f32],
    istd: &[f32],
    gamma: &[f32],
    gbeta_over_q: &[f32],
    ggamma_over_q: &[f32],
) {
    for f in 0..g.len() {
        let xhat = (x_raw[f] - mean[f]) * istd[f];
        g[f] = gamma[f] * istd[f] * (g[f] - gbeta_over_q[f] - xhat * ggamma_over_q[f]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_are_reproducible_and_position_independent() {
        let mut a = [0.0f32; 64];
        let mut b = [0.0f32; 64];
        fill_dropout_mask(mask_stream_base(7, 3, 1), 0.3, &mut a);
        fill_dropout_mask(mask_stream_base(7, 3, 1), 0.3, &mut b);
        assert_eq!(a, b);
        // Different query index ⇒ different mask.
        fill_dropout_mask(mask_stream_base(7, 4, 1), 0.3, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn moments_match_direct_computation() {
        let rows = [[1.0f32, -2.0], [3.0, 0.5], [-1.0, 1.5]];
        let mut sum = [0.0f64; 2];
        let mut sumsq = [0.0f64; 2];
        for r in &rows {
            accumulate_moments(r, &mut sum, &mut sumsq);
        }
        let (mut mean, mut var, mut istd) = ([0.0f32; 2], [0.0f32; 2], [0.0f32; 2]);
        finalize_moments(&sum, &sumsq, 3, 1e-5, &mut mean, &mut var, &mut istd);
        assert!((mean[0] - 1.0).abs() < 1e-6);
        assert!((var[0] - 8.0 / 3.0).abs() < 1e-5);
        assert!((istd[0] - 1.0 / (8.0f32 / 3.0 + 1e-5).sqrt()).abs() < 1e-6);
    }

    /// BN backward matches finite differences of the whole normalized
    /// batch w.r.t. one raw input, through a scalar loss Σ u·y.
    #[test]
    fn bn_backward_matches_finite_differences() {
        let q = 4usize;
        let d = 3usize;
        let x: Vec<f32> = (0..q * d).map(|i| (i as f32 * 0.37).sin()).collect();
        let gamma: Vec<f32> = (0..d).map(|f| 1.0 + 0.1 * f as f32).collect();
        let beta: Vec<f32> = (0..d).map(|f| 0.05 * f as f32).collect();
        let upstream: Vec<f32> = (0..q * d).map(|i| (i as f32 * 0.71).cos()).collect();
        let eps = 1e-5f32;

        let forward = |x: &[f32]| -> f32 {
            let mut sum = vec![0.0f64; d];
            let mut sumsq = vec![0.0f64; d];
            for r in x.chunks(d) {
                accumulate_moments(r, &mut sum, &mut sumsq);
            }
            let (mut mean, mut var, mut istd) = (vec![0.0f32; d], vec![0.0f32; d], vec![0.0f32; d]);
            finalize_moments(&sum, &sumsq, q, eps, &mut mean, &mut var, &mut istd);
            let mut loss = 0.0f32;
            for (g, row) in x.chunks(d).enumerate() {
                let mut y = row.to_vec();
                bn_apply(&mut y, &mean, &istd, &gamma, &beta);
                for f in 0..d {
                    loss += upstream[g * d + f] * y[f];
                }
            }
            loss
        };

        // Analytic gradient.
        let mut sum = vec![0.0f64; d];
        let mut sumsq = vec![0.0f64; d];
        for r in x.chunks(d) {
            accumulate_moments(r, &mut sum, &mut sumsq);
        }
        let (mut mean, mut var, mut istd) = (vec![0.0f32; d], vec![0.0f32; d], vec![0.0f32; d]);
        finalize_moments(&sum, &sumsq, q, eps, &mut mean, &mut var, &mut istd);
        let mut gbeta = vec![0.0f64; d];
        let mut ggamma = vec![0.0f64; d];
        for (g, row) in x.chunks(d).enumerate() {
            for f in 0..d {
                let xhat = f64::from((row[f] - mean[f]) * istd[f]);
                gbeta[f] += f64::from(upstream[g * d + f]);
                ggamma[f] += f64::from(upstream[g * d + f]) * xhat;
            }
        }
        let gb_q: Vec<f32> = gbeta.iter().map(|v| (*v / q as f64) as f32).collect();
        let gg_q: Vec<f32> = ggamma.iter().map(|v| (*v / q as f64) as f32).collect();
        let mut grad = upstream.clone();
        for (g, row) in x.chunks(d).enumerate() {
            bn_backward_row(&mut grad[g * d..(g + 1) * d], row, &mean, &istd, &gamma, &gb_q, &gg_q);
        }

        for idx in 0..q * d {
            let h = 1e-2f32;
            let mut xp = x.clone();
            xp[idx] += h;
            let mut xm = x.clone();
            xm[idx] -= h;
            let fd = (forward(&xp) - forward(&xm)) / (2.0 * h);
            assert!(
                (grad[idx] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "grad[{idx}]: analytic {} vs fd {fd}",
                grad[idx]
            );
        }
    }
}

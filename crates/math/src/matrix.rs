//! A minimal row-major dense matrix.
//!
//! Only the ER-MLP baseline (§2.2.2 of the paper) needs real matrix–vector
//! algebra; everything else in the workspace works on flat slices. Keeping
//! this type tiny avoids pulling a BLAS-sized dependency into the build.

use crate::vecops::dot;

/// Row-major dense `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Flat immutable view of the backing storage (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the backing storage (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix–vector product `out = A·x`.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn matvec(&self, x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: x length mismatch");
        assert_eq!(out.len(), self.rows, "matvec: out length mismatch");
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = dot(self.row(r), x);
        }
    }

    /// Transposed matrix–vector product `out = Aᵀ·y` (used in backprop).
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn matvec_transposed(&self, y: &[f32], out: &mut [f32]) {
        assert_eq!(y.len(), self.rows, "matvec_transposed: y length mismatch");
        assert_eq!(out.len(), self.cols, "matvec_transposed: out length mismatch");
        out.fill(0.0);
        for (row_idx, yr) in y.iter().enumerate() {
            let row = self.row(row_idx);
            for (o, rv) in out.iter_mut().zip(row) {
                *o += yr * rv;
            }
        }
    }

    /// Rank-1 update `A += alpha · y · xᵀ` (outer product accumulation).
    pub fn rank1_update(&mut self, alpha: f32, y: &[f32], x: &[f32]) {
        assert_eq!(y.len(), self.rows);
        assert_eq!(x.len(), self.cols);
        for (row_idx, yv) in y.iter().enumerate() {
            let yr = alpha * yv;
            let row = self.row_mut(row_idx);
            for (rv, xv) in row.iter_mut().zip(x) {
                *rv += yr * xv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_hand_computed() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = [0.0f32; 2];
        a.matvec(&[1.0, 0.0, -1.0], &mut out);
        assert_eq!(out, [-2.0, -2.0]);
    }

    #[test]
    fn transposed_matvec_hand_computed() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut out = [0.0f32; 3];
        a.matvec_transposed(&[1.0, -1.0], &mut out);
        assert_eq!(out, [-3.0, -3.0, -3.0]);
    }

    #[test]
    fn rank1_update_is_outer_product() {
        let mut a = Matrix::zeros(2, 2);
        a.rank1_update(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(a.as_slice(), &[8.0, 10.0, 24.0, 30.0]);
    }

    #[test]
    fn rows_are_contiguous() {
        let mut a = Matrix::zeros(3, 2);
        a.row_mut(1).copy_from_slice(&[7.0, 8.0]);
        assert_eq!(a.get(1, 0), 7.0);
        assert_eq!(a.get(1, 1), 8.0);
        assert_eq!(a.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }
}

//! Element-wise vector kernels over `&[f32]` slices.
//!
//! All functions panic (via `debug_assert!` in release-hot paths and
//! `assert!` where cheap) when slice lengths disagree; callers own layout.

/// Dot product `Σ_d a[d]·b[d]`.
///
/// Accumulates in `f64` to keep rank computations stable for embedding sizes
/// in the hundreds, then truncates back to `f32`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        acc += f64::from(*x) * f64::from(*y);
    }
    acc as f32
}

/// Trilinear product `⟨a, b, c⟩ = Σ_d a[d]·b[d]·c[d]` (Eq. 3 of the paper).
///
/// This is the score kernel of every trilinear-product-based model:
/// DistMult, ComplEx, CP, CPh and the generalized multi-embedding
/// interaction mechanism all reduce to weighted sums of this quantity.
#[inline]
pub fn trilinear(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    let mut acc = 0.0f64;
    for d in 0..a.len() {
        acc += f64::from(a[d]) * f64::from(b[d]) * f64::from(c[d]);
    }
    acc as f32
}

/// In-place AXPY: `y[d] += alpha · x[d]`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yd, xd) in y.iter_mut().zip(x) {
        *yd += alpha * xd;
    }
}

/// In-place scaled Hadamard accumulation: `out[d] += alpha · a[d] · b[d]`.
///
/// The gradient of a trilinear product with respect to one factor is exactly
/// the Hadamard product of the other two, so this is the workhorse of the
/// analytic backward pass.
#[inline]
pub fn hadamard_axpy(alpha: f32, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for d in 0..out.len() {
        out[d] += alpha * a[d] * b[d];
    }
}

/// Element-wise product `out[d] = a[d]·b[d]`.
#[inline]
pub fn hadamard(a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for d in 0..out.len() {
        out[d] = a[d] * b[d];
    }
}

/// In-place scaling `x[d] *= alpha`.
#[inline]
pub fn scale(alpha: f32, x: &mut [f32]) {
    for v in x {
        *v *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`, accumulated in `f64`.
#[inline]
pub fn l2_norm(x: &[f32]) -> f32 {
    let mut acc = 0.0f64;
    for v in x {
        acc += f64::from(*v) * f64::from(*v);
    }
    (acc.sqrt()) as f32
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn l2_norm_sq(x: &[f32]) -> f32 {
    let mut acc = 0.0f64;
    for v in x {
        acc += f64::from(*v) * f64::from(*v);
    }
    acc as f32
}

/// L1 norm `Σ_d |x[d]|`.
#[inline]
pub fn l1_norm(x: &[f32]) -> f32 {
    x.iter().map(|v| v.abs() as f64).sum::<f64>() as f32
}

/// Projects `x` onto the unit L2 sphere in place.
///
/// The paper constrains entity embedding vectors to unit L2 norm after each
/// training iteration (§5.3). Vectors with norm below `1e-12` are left
/// untouched to avoid division blow-ups.
#[inline]
pub fn normalize_l2(x: &mut [f32]) {
    let n = l2_norm(x);
    if n > 1e-12 {
        scale(1.0 / n, x);
    }
}

/// Lp distance `‖a − b‖_p` for `p ∈ {1, 2}` (Eq. 1; used by TransE).
///
/// # Panics
/// Panics if `p` is not 1 or 2.
#[inline]
pub fn lp_distance(a: &[f32], b: &[f32], p: u8) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match p {
        1 => {
            let mut acc = 0.0f64;
            for (x, y) in a.iter().zip(b) {
                acc += f64::from((x - y).abs());
            }
            acc as f32
        }
        2 => {
            let mut acc = 0.0f64;
            for (x, y) in a.iter().zip(b) {
                let d = f64::from(x - y);
                acc += d * d;
            }
            acc.sqrt() as f32
        }
        _ => panic!("lp_distance supports only p=1 and p=2, got p={p}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn trilinear_matches_hand_computation() {
        // 1*4*7 + 2*5*8 + 3*6*9 = 28 + 80 + 162 = 270
        assert_eq!(
            trilinear(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]),
            270.0
        );
    }

    #[test]
    fn trilinear_is_symmetric_in_arguments() {
        let (a, b, c) = ([0.3f32, -1.2, 2.0], [1.5f32, 0.4, -0.7], [2.0f32, -0.1, 0.9]);
        let s = trilinear(&a, &b, &c);
        assert!((s - trilinear(&b, &a, &c)).abs() < 1e-6);
        assert!((s - trilinear(&c, &b, &a)).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = [1.0f32, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, [7.0, -1.0]);
    }

    #[test]
    fn hadamard_axpy_is_trilinear_gradient() {
        // d/da ⟨a,b,c⟩ = b⊙c
        let b = [2.0f32, 3.0];
        let c = [5.0f32, 7.0];
        let mut g = [0.0f32; 2];
        hadamard_axpy(1.0, &b, &c, &mut g);
        assert_eq!(g, [10.0, 21.0]);
    }

    #[test]
    fn normalize_gives_unit_norm() {
        let mut x = [3.0f32, 4.0];
        normalize_l2(&mut x);
        assert!((l2_norm(&x) - 1.0).abs() < 1e-6);
        assert!((x[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn normalize_leaves_zero_vector() {
        let mut x = [0.0f32; 4];
        normalize_l2(&mut x);
        assert_eq!(x, [0.0; 4]);
    }

    #[test]
    fn lp_distances() {
        let a = [1.0f32, 2.0];
        let b = [4.0f32, 6.0];
        assert_eq!(lp_distance(&a, &b, 1), 7.0);
        assert_eq!(lp_distance(&a, &b, 2), 5.0);
    }

    #[test]
    #[should_panic(expected = "lp_distance supports only")]
    fn lp_distance_rejects_other_p() {
        lp_distance(&[0.0], &[0.0], 3);
    }

    #[test]
    fn norms() {
        let x = [3.0f32, -4.0];
        assert_eq!(l2_norm(&x), 5.0);
        assert_eq!(l2_norm_sq(&x), 25.0);
        assert_eq!(l1_norm(&x), 7.0);
    }
}

//! Dense numeric kernels shared by the `mei` workspace.
//!
//! This crate deliberately has no heavy linear-algebra dependency: every
//! model in the paper ("Analyzing Knowledge Graph Embedding Methods from a
//! Multi-Embedding Interaction Perspective", Tran & Takasu, EDBT/DSI4 2019)
//! is built from element-wise vector products and reductions, so a small set
//! of hand-written kernels keeps the whole stack auditable and fast.
//!
//! Modules:
//! * [`vecops`] — dot products, trilinear products, AXPY, Hadamard products,
//!   norms, and in-place normalization over `&[f32]` slices.
//! * [`kernels`] — unrolled multi-accumulator variants of the hot vecops
//!   plus the cache-blocked [`kernels::gemm_nt`] used by the evaluation
//!   ranking pipeline.
//! * [`block`] — block-term (Tucker) contraction kernels for the MEI
//!   K×Ce×Cr family, walk-order replicas of the generic ω term walk.
//! * [`reg`] — counter-based dropout masks and f64 batch-norm moment
//!   helpers for the deterministic regularized training path.
//! * [`quantops`] — int8 screening kernels ([`quantops::gemm_i8_nt`]) with
//!   exact i32 accumulation, behind the `mei-quant` candidate-generation
//!   pass.
//! * [`activations`] — numerically stable sigmoid / softplus / tanh /
//!   softmax and their derivatives.
//! * [`init`] — deterministic, seedable embedding initializers.
//! * [`matrix`] — a minimal row-major dense matrix used by the ER-MLP
//!   baseline.
//! * [`stats`] — streaming mean/variance (Welford) used by the bench
//!   harness.
//!
//! # Example
//!
//! The scalar reference ops compute exactly what they say; the `kernels`
//! variants are faster but bit-compatible where the docs promise it:
//!
//! ```
//! let h = [0.5f32, 1.0, -2.0, 0.25];
//! let t = [2.0f32, 0.5, 1.0, 4.0];
//! let r = [1.0f32, 1.0, 0.5, 1.0];
//! // ⟨h, t⟩ = 1.0 + 0.5 - 2.0 + 1.0
//! assert_eq!(mei_math::dot(&h, &t), 0.5);
//! // ⟨h, t, r⟩ = 1.0 + 0.5 - 1.0 + 1.0
//! assert_eq!(mei_math::trilinear(&h, &t, &r), 1.5);
//! let mut v = vec![3.0f32, 4.0];
//! mei_math::normalize_l2(&mut v);
//! assert_eq!(v, [0.6, 0.8]);
//! ```

#![warn(missing_docs)]

pub mod activations;
pub mod block;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod pca;
pub mod quantops;
pub mod reg;
pub mod stats;
pub mod vecops;

pub use activations::{sigmoid, softmax_in_place, softplus, tanh_vec};
pub use kernels::{
    adam_update_fast, axpy_fast, dot_fast, gemm_nt, hadamard_axpy_fast, hadamard_write_fast,
    scale_add_l2_fast, scale_write_l2_fast, trilinear_fast, AdamParams,
};
pub use matrix::Matrix;
pub use pca::Pca;
pub use quantops::{avx512_vnni_enabled, dot_i8, gemm_i8_nt, PackedI8};
pub use stats::RunningStats;
pub use vecops::{axpy, dot, hadamard, l2_norm, normalize_l2, trilinear};

//! Dense numeric kernels shared by the `mei` workspace.
//!
//! This crate deliberately has no heavy linear-algebra dependency: every
//! model in the paper ("Analyzing Knowledge Graph Embedding Methods from a
//! Multi-Embedding Interaction Perspective", Tran & Takasu, EDBT/DSI4 2019)
//! is built from element-wise vector products and reductions, so a small set
//! of hand-written kernels keeps the whole stack auditable and fast.
//!
//! Modules:
//! * [`vecops`] — dot products, trilinear products, AXPY, Hadamard products,
//!   norms, and in-place normalization over `&[f32]` slices.
//! * [`kernels`] — unrolled multi-accumulator variants of the hot vecops
//!   plus the cache-blocked [`kernels::gemm_nt`] used by the evaluation
//!   ranking pipeline.
//! * [`activations`] — numerically stable sigmoid / softplus / tanh /
//!   softmax and their derivatives.
//! * [`init`] — deterministic, seedable embedding initializers.
//! * [`matrix`] — a minimal row-major dense matrix used by the ER-MLP
//!   baseline.
//! * [`stats`] — streaming mean/variance (Welford) used by the bench
//!   harness.

#![warn(missing_docs)]

pub mod activations;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod pca;
pub mod stats;
pub mod vecops;

pub use activations::{sigmoid, softmax_in_place, softplus, tanh_vec};
pub use kernels::{dot_fast, gemm_nt, hadamard_axpy_fast, trilinear_fast};
pub use matrix::Matrix;
pub use pca::Pca;
pub use stats::RunningStats;
pub use vecops::{axpy, dot, hadamard, l2_norm, normalize_l2, trilinear};

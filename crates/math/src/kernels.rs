//! Blocked, SIMD-friendly evaluation kernels.
//!
//! Link-prediction ranking reduces to scoring a small matrix of query
//! contexts against the whole entity table — a tall-skinny `A · Bᵀ`. The
//! kernels here make that memory-bandwidth-bound instead of latency-bound:
//!
//! * [`dot_fast`] / [`trilinear_fast`] / [`hadamard_axpy_fast`] — unrolled
//!   multi-accumulator variants of the `vecops` kernels. Eight independent
//!   f32 lanes break the serial dependency chain of the classic
//!   one-accumulator loop, so the autovectorizer maps them onto full-width
//!   SIMD FMAs.
//! * [`gemm_nt`] — a cache-blocked `out = A · Bᵀ` over row-major inputs
//!   that streams each block of B (the entity table) through L2 exactly
//!   once per block of A rows (the packed query contexts).
//!
//! # Determinism contract
//!
//! Every element of [`gemm_nt`]'s output is computed by the *same*
//! reduction (same lane count, same combine tree, same FMA usage) as one
//! [`dot_fast`] call on the corresponding rows. Blocking only reorders
//! *which* (row, column) pairs are computed when — never the arithmetic
//! inside one pair — so the blocked evaluation path produces bit-identical
//! scores to the per-query path within a process. On x86-64 the kernels
//! dispatch once (cached) to a hand-written AVX2+FMA variant when the CPU
//! supports it; both callers go through the same dispatch, preserving the
//! bit-identity. (The AVX2 and portable variants may differ from *each
//! other* in the last bit — the contract is within a process, not across
//! machines.)

use std::sync::atomic::{AtomicU8, Ordering};

/// Number of independent accumulator lanes. Eight f32 lanes fill one AVX2
/// register (or two SSE2 registers) and are enough to hide FMA latency.
const LANES: usize = 8;

/// Dispatch cache: 0 = undetected, 1 = portable, 2 = AVX2+FMA.
static SIMD_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Whether the AVX2+FMA fast path is active (detected once per process).
#[inline]
pub fn avx2_fma_enabled() -> bool {
    match SIMD_LEVEL.load(Ordering::Relaxed) {
        0 => {
            #[cfg(target_arch = "x86_64")]
            let has = std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma");
            #[cfg(not(target_arch = "x86_64"))]
            let has = false;
            SIMD_LEVEL.store(if has { 2 } else { 1 }, Ordering::Relaxed);
            has
        }
        level => level == 2,
    }
}

/// The shared dot-product body: eight independent accumulators over
/// `chunks_exact(8)`, a fixed pairwise combine tree, then the scalar tail.
/// `FMA = true` uses `f32::mul_add` (a single hardware instruction only
/// inside a `target_feature(enable = "fma")` context — calling it without
/// FMA enabled would lower to a slow libm call, hence the const split).
#[inline(always)]
fn dot_body<const FMA: bool>(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let ca = a.chunks_exact(LANES);
    let cb = b.chunks_exact(LANES);
    let (ra, rb) = (ca.remainder(), cb.remainder());
    for (xa, xb) in ca.zip(cb) {
        for l in 0..LANES {
            if FMA {
                acc[l] = xa[l].mul_add(xb[l], acc[l]);
            } else {
                acc[l] += xa[l] * xb[l];
            }
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ra.iter().zip(rb) {
        if FMA {
            tail = x.mul_add(*y, tail);
        } else {
            tail += x * y;
        }
    }
    (((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))) + tail
}

/// Trilinear body, same lane structure as [`dot_body`].
#[inline(always)]
fn trilinear_body<const FMA: bool>(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    let mut acc = [0.0f32; LANES];
    let ca = a.chunks_exact(LANES);
    let cb = b.chunks_exact(LANES);
    let cc = c.chunks_exact(LANES);
    let (ra, rb, rc) = (ca.remainder(), cb.remainder(), cc.remainder());
    for ((xa, xb), xc) in ca.zip(cb).zip(cc) {
        for l in 0..LANES {
            if FMA {
                acc[l] = (xa[l] * xb[l]).mul_add(xc[l], acc[l]);
            } else {
                acc[l] += xa[l] * xb[l] * xc[l];
            }
        }
    }
    let mut tail = 0.0f32;
    for ((x, y), z) in ra.iter().zip(rb).zip(rc) {
        if FMA {
            tail = (x * y).mul_add(*z, tail);
        } else {
            tail += x * y * z;
        }
    }
    (((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))) + tail
}

/// Hadamard-AXPY body: `out[d] += alpha · a[d] · b[d]`.
#[inline(always)]
fn hadamard_axpy_body<const FMA: bool>(alpha: f32, a: &[f32], b: &[f32], out: &mut [f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        if FMA {
            *o = (alpha * x).mul_add(*y, *o);
        } else {
            *o += alpha * x * y;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! Hand-written AVX2+FMA kernels. Four 256-bit accumulators hide the
    //! FMA latency chain; the horizontal reduction order is fixed, so the
    //! same inputs always produce the same bits on this path. Callers must
    //! check [`super::avx2_fma_enabled`] first.
    use super::rows_per_block;
    use std::arch::x86_64::*;

    /// Shared dot kernel: the one reduction both [`dot`] and [`gemm_nt`]
    /// use, which is what makes blocked and per-query scores bit-identical.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_inner(a: *const f32, b: *const f32, len: usize) -> f32 {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 32 <= len {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(i)), _mm256_loadu_ps(b.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.add(i + 8)),
                _mm256_loadu_ps(b.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.add(i + 16)),
                _mm256_loadu_ps(b.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(a.add(i + 24)),
                _mm256_loadu_ps(b.add(i + 24)),
                acc3,
            );
            i += 32;
        }
        let mut acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        while i + 8 <= len {
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(i)), _mm256_loadu_ps(b.add(i)), acc);
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        while i < len {
            s = (*a.add(i)).mul_add(*b.add(i), s);
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        dot_inner(a.as_ptr(), b.as_ptr(), a.len())
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn trilinear(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), c.len());
        let (pa, pb, pc) = (a.as_ptr(), b.as_ptr(), c.as_ptr());
        let len = a.len();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 16 <= len {
            let p0 = _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            let p1 =
                _mm256_mul_ps(_mm256_loadu_ps(pa.add(i + 8)), _mm256_loadu_ps(pb.add(i + 8)));
            acc0 = _mm256_fmadd_ps(p0, _mm256_loadu_ps(pc.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(p1, _mm256_loadu_ps(pc.add(i + 8)), acc1);
            i += 16;
        }
        let mut acc = _mm256_add_ps(acc0, acc1);
        while i + 8 <= len {
            let p = _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            acc = _mm256_fmadd_ps(p, _mm256_loadu_ps(pc.add(i)), acc);
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        while i < len {
            s = (*pa.add(i) * *pb.add(i)).mul_add(*pc.add(i), s);
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn hadamard_axpy(alpha: f32, a: &[f32], b: &[f32], out: &mut [f32]) {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), out.len());
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let len = out.len();
        let valpha = _mm256_set1_ps(alpha);
        let mut i = 0usize;
        while i + 8 <= len {
            let p = _mm256_mul_ps(valpha, _mm256_loadu_ps(pa.add(i)));
            let o = _mm256_fmadd_ps(p, _mm256_loadu_ps(pb.add(i)), _mm256_loadu_ps(po.add(i)));
            _mm256_storeu_ps(po.add(i), o);
            i += 8;
        }
        while i < len {
            *po.add(i) = (alpha * *pa.add(i)).mul_add(*pb.add(i), *po.add(i));
            i += 1;
        }
    }

    /// `entry[d] = base(entry[d]) + (coef·grad[d] + l2·params[d])` with
    /// plain mul/add (NO FMA — must match the scalar expression bit for
    /// bit). `WRITE = true` replaces `base(entry[d])` with literal `0.0`,
    /// the first-touch form for a fresh accumulator row. (Non-temporal
    /// stores were tried here and lost: gradient rows are re-read by the
    /// optimizer step moments later, and 16-byte-aligned slab rows force
    /// partial write-combining flushes.)
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_add_l2<const WRITE: bool>(
        entry: &mut [f32],
        grad: &[f32],
        coef: f32,
        l2: f32,
        params: &[f32],
    ) {
        debug_assert_eq!(entry.len(), grad.len());
        debug_assert_eq!(entry.len(), params.len());
        let (pe, pg, pp) = (entry.as_mut_ptr(), grad.as_ptr(), params.as_ptr());
        let len = entry.len();
        let (vc, vl) = (_mm256_set1_ps(coef), _mm256_set1_ps(l2));
        let mut i = 0usize;
        while i + 8 <= len {
            let s = _mm256_add_ps(
                _mm256_mul_ps(vc, _mm256_loadu_ps(pg.add(i))),
                _mm256_mul_ps(vl, _mm256_loadu_ps(pp.add(i))),
            );
            let base = if WRITE { _mm256_setzero_ps() } else { _mm256_loadu_ps(pe.add(i)) };
            _mm256_storeu_ps(pe.add(i), _mm256_add_ps(base, s));
            i += 8;
        }
        while i < len {
            let s = coef * *pg.add(i) + l2 * *pp.add(i);
            *pe.add(i) = if WRITE { 0.0 + s } else { *pe.add(i) + s };
            i += 1;
        }
    }

    /// `entry[d] += alpha·params[d]` with plain mul/add (no FMA), matching
    /// the scalar AXPY expression bitwise.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy(alpha: f32, params: &[f32], entry: &mut [f32]) {
        debug_assert_eq!(entry.len(), params.len());
        let (pe, pp) = (entry.as_mut_ptr(), params.as_ptr());
        let len = entry.len();
        let va = _mm256_set1_ps(alpha);
        let mut i = 0usize;
        while i + 8 <= len {
            let s = _mm256_mul_ps(va, _mm256_loadu_ps(pp.add(i)));
            _mm256_storeu_ps(pe.add(i), _mm256_add_ps(_mm256_loadu_ps(pe.add(i)), s));
            i += 8;
        }
        while i < len {
            *pe.add(i) += alpha * *pp.add(i);
            i += 1;
        }
    }

    /// First-touch form of [`hadamard_axpy`]:
    /// `out[d] = fma(alpha·a[d], b[d], 0.0)` — exactly what
    /// [`hadamard_axpy`] computes against a zeroed accumulator, fused into
    /// a single store.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn hadamard_write(alpha: f32, a: &[f32], b: &[f32], out: &mut [f32]) {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), out.len());
        let (pa, pb, po) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let len = out.len();
        let valpha = _mm256_set1_ps(alpha);
        let zero = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= len {
            let p = _mm256_mul_ps(valpha, _mm256_loadu_ps(pa.add(i)));
            _mm256_storeu_ps(po.add(i), _mm256_fmadd_ps(p, _mm256_loadu_ps(pb.add(i)), zero));
            i += 8;
        }
        while i < len {
            *po.add(i) = (alpha * *pa.add(i)).mul_add(*pb.add(i), 0.0);
            i += 1;
        }
    }

    /// Fused sparse-Adam row update, the SIMD twin of the scalar loop in
    /// [`super::adam_update_body`]. Every operation is a plain mul / add /
    /// div / sqrt (NO FMA): all four are exactly rounded by IEEE 754, so
    /// each lane computes bit-identically to the scalar expression — the
    /// property the cross-thread-count training parity contract rests on.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn adam_update(
        params: &mut [f32],
        grads: &[f32],
        m: &mut [f32],
        v: &mut [f32],
        h: &super::AdamParams,
    ) {
        debug_assert_eq!(params.len(), grads.len());
        debug_assert_eq!(params.len(), m.len());
        debug_assert_eq!(params.len(), v.len());
        let len = params.len();
        let (pp, pg, pm, pv) =
            (params.as_mut_ptr(), grads.as_ptr(), m.as_mut_ptr(), v.as_mut_ptr());
        let vb1 = _mm256_set1_ps(h.beta1);
        let vb2 = _mm256_set1_ps(h.beta2);
        let vo1 = _mm256_set1_ps(1.0 - h.beta1);
        let vo2 = _mm256_set1_ps(1.0 - h.beta2);
        let vbc1 = _mm256_set1_ps(h.bc1);
        let vbc2 = _mm256_set1_ps(h.bc2);
        let vlr = _mm256_set1_ps(h.lr);
        let veps = _mm256_set1_ps(h.eps);
        let mut i = 0usize;
        while i + 8 <= len {
            let g = _mm256_loadu_ps(pg.add(i));
            // m ← β₁·m + (1−β₁)·g
            let mn = _mm256_add_ps(
                _mm256_mul_ps(vb1, _mm256_loadu_ps(pm.add(i))),
                _mm256_mul_ps(vo1, g),
            );
            _mm256_storeu_ps(pm.add(i), mn);
            // v ← β₂·v + ((1−β₂)·g)·g  (left-associated like the scalar)
            let vn = _mm256_add_ps(
                _mm256_mul_ps(vb2, _mm256_loadu_ps(pv.add(i))),
                _mm256_mul_ps(_mm256_mul_ps(vo2, g), g),
            );
            _mm256_storeu_ps(pv.add(i), vn);
            // θ ← θ − (lr·(m/bc1)) / (√(v/bc2) + ε)
            let m_hat = _mm256_div_ps(mn, vbc1);
            let v_hat = _mm256_div_ps(vn, vbc2);
            let denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), veps);
            let delta = _mm256_div_ps(_mm256_mul_ps(vlr, m_hat), denom);
            _mm256_storeu_ps(pp.add(i), _mm256_sub_ps(_mm256_loadu_ps(pp.add(i)), delta));
            i += 8;
        }
        while i < len {
            let g = *pg.add(i);
            let mn = h.beta1 * *pm.add(i) + (1.0 - h.beta1) * g;
            *pm.add(i) = mn;
            let vn = h.beta2 * *pv.add(i) + (1.0 - h.beta2) * g * g;
            *pv.add(i) = vn;
            let m_hat = mn / h.bc1;
            let v_hat = vn / h.bc2;
            *pp.add(i) -= h.lr * m_hat / (v_hat.sqrt() + h.eps);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot_gather(
        a: &[f32],
        b: &[f32],
        k: usize,
        pairs: &[(u32, u32)],
        out: &mut [f32],
    ) {
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        for (slot, &(ai, bi)) in out.iter_mut().zip(pairs) {
            *slot = dot_inner(pa.add(ai as usize * k), pb.add(bi as usize * k), k);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn gemm_nt(a: &[f32], b: &[f32], k: usize, out: &mut [f32]) {
        let m = a.len() / k;
        let n = b.len() / k;
        let nb = rows_per_block(k);
        for (block_idx, bblock) in b.chunks(nb * k).enumerate() {
            let j0 = block_idx * nb;
            let bn = bblock.len() / k;
            for i in 0..m {
                let arow = a.as_ptr().add(i * k);
                let orow = &mut out[i * n + j0..i * n + j0 + bn];
                for (j, slot) in orow.iter_mut().enumerate() {
                    *slot = dot_inner(arow, bblock.as_ptr().add(j * k), k);
                }
            }
        }
    }

    /// `out += W·B` (row-major, no transpose): the no-FMA [`axpy`] is the
    /// inner op, dispatched once for the whole product instead of once per
    /// row pair. Same blocking as the scalar body.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_nn_acc(w: &[f32], b: &[f32], k: usize, out: &mut [f32]) {
        let n = b.len() / k;
        let m = out.len() / k;
        let nb = rows_per_block(k);
        for (block_idx, bblock) in b.chunks(nb * k).enumerate() {
            let e0 = block_idx * nb;
            let bn = bblock.len() / k;
            for i in 0..m {
                let orow = &mut out[i * k..(i + 1) * k];
                for e in 0..bn {
                    axpy(*w.get_unchecked(i * n + e0 + e), &bblock[e * k..(e + 1) * k], orow);
                }
            }
        }
    }

    /// Row range `[e0, e0 + out_rows)` of `out += Wᵀ·C`: no-FMA [`axpy`]
    /// inner op, one dispatch for the whole scatter. Same blocking as the
    /// scalar body.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_tn_acc(
        w: &[f32],
        n: usize,
        ctxs: &[f32],
        k: usize,
        e0: usize,
        out: &mut [f32],
    ) {
        let m = ctxs.len() / k;
        let rows = out.len() / k;
        let gb = rows_per_block(k);
        let mut g0 = 0usize;
        while g0 < m {
            let gn = gb.min(m - g0);
            for e in 0..rows {
                let orow = &mut out[e * k..(e + 1) * k];
                for g in g0..g0 + gn {
                    axpy(*w.get_unchecked(g * n + e0 + e), &ctxs[g * k..(g + 1) * k], orow);
                }
            }
            g0 += gn;
        }
    }
}

/// Unrolled dot product `Σ_d a[d]·b[d]` with eight independent f32
/// accumulator lanes. Same value in every call within a process (the
/// AVX2+FMA dispatch is detected once and cached), but *not* bit-identical
/// to [`crate::vecops::dot`], which accumulates serially in f64.
#[inline]
pub fn dot_fast(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2+FMA are available.
        return unsafe { x86::dot(a, b) };
    }
    dot_body::<false>(a, b)
}

/// Unrolled trilinear product `Σ_d a[d]·b[d]·c[d]` (lane structure of
/// [`dot_fast`]).
#[inline]
pub fn trilinear_fast(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2+FMA are available.
        return unsafe { x86::trilinear(a, b, c) };
    }
    trilinear_body::<false>(a, b, c)
}

/// Unrolled in-place scaled Hadamard accumulation
/// `out[d] += alpha · a[d] · b[d]` (the interaction-context builder's
/// workhorse).
#[inline]
pub fn hadamard_axpy_fast(alpha: f32, a: &[f32], b: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2+FMA are available.
        return unsafe { x86::hadamard_axpy(alpha, a, b, out) };
    }
    hadamard_axpy_body::<false>(alpha, a, b, out)
}

/// Fused gradient-row update body:
/// `entry[d] = base + (coef·grad[d] + l2·params[d])` where `base` is the
/// existing value (`WRITE = false`) or literal `0.0` (`WRITE = true`).
/// Plain mul/add only — bit-identical to the scalar accumulate loop the
/// legacy gradient path runs.
#[inline(always)]
fn scale_add_l2_body<const WRITE: bool>(
    entry: &mut [f32],
    grad: &[f32],
    coef: f32,
    l2: f32,
    params: &[f32],
) {
    debug_assert_eq!(entry.len(), grad.len());
    debug_assert_eq!(entry.len(), params.len());
    for i in 0..entry.len() {
        let s = coef * grad[i] + l2 * params[i];
        entry[i] = if WRITE { 0.0 + s } else { entry[i] + s };
    }
}

/// AXPY body: `entry[d] += alpha · params[d]`, plain mul/add.
#[inline(always)]
fn axpy_body(alpha: f32, params: &[f32], entry: &mut [f32]) {
    debug_assert_eq!(entry.len(), params.len());
    for (e, p) in entry.iter_mut().zip(params) {
        *e += alpha * p;
    }
}

/// Fused gradient-row accumulate
/// `entry[d] += coef·grad[d] + l2·params[d]` — one pass over three rows
/// instead of the two passes a separate scale-add + AXPY would take.
///
/// Uses plain mul/add on every path (no FMA), so the result is
/// bit-identical to the scalar expression `entry[d] += coef·grad[d] +
/// l2·params[d]` evaluated left to right.
#[inline]
pub fn scale_add_l2_fast(entry: &mut [f32], grad: &[f32], coef: f32, l2: f32, params: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2 is available.
        return unsafe { x86::scale_add_l2::<false>(entry, grad, coef, l2, params) };
    }
    scale_add_l2_body::<false>(entry, grad, coef, l2, params)
}

/// First-touch variant of [`scale_add_l2_fast`] for rows whose previous
/// contents are garbage: `entry[d] = 0.0 + (coef·grad[d] + l2·params[d])`.
/// Bit-identical to zero-filling `entry` and then calling
/// [`scale_add_l2_fast`] (`0.0 + x == x` for every `x` the trainer
/// produces; `-0.0` inputs still round-trip because IEEE `0.0 + -0.0` is
/// `0.0`, exactly what the zero-filled accumulate computes).
#[inline]
pub fn scale_write_l2_fast(entry: &mut [f32], grad: &[f32], coef: f32, l2: f32, params: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2 is available.
        return unsafe { x86::scale_add_l2::<true>(entry, grad, coef, l2, params) };
    }
    scale_add_l2_body::<true>(entry, grad, coef, l2, params)
}

/// Plain-multiply AXPY `entry[d] += alpha · params[d]` (no FMA — matches
/// the scalar L2 fold loop bitwise).
#[inline]
pub fn axpy_fast(alpha: f32, params: &[f32], entry: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2 is available.
        return unsafe { x86::axpy(alpha, params, entry) };
    }
    axpy_body(alpha, params, entry)
}

/// First-touch form of [`hadamard_axpy_fast`]:
/// `out[d] = alpha · a[d] · b[d]` computed with the same instruction
/// sequence [`hadamard_axpy_fast`] would run against a zeroed `out`, so
/// it is bit-identical to `out.fill(0.0)` followed by that call but
/// touches `out` once instead of twice.
#[inline]
pub fn hadamard_write_fast(alpha: f32, a: &[f32], b: &[f32], out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2+FMA are available.
        return unsafe { x86::hadamard_write(alpha, a, b, out) };
    }
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = 0.0 + alpha * x * y;
    }
}

/// Hyperparameters of one sparse-Adam update, with the step-dependent bias
/// corrections `bc1 = 1 − β₁ᵗ` and `bc2 = 1 − β₂ᵗ` already baked in, so the
/// kernel itself is a pure elementwise function of its inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamParams {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Denominator stabilizer ε.
    pub eps: f32,
    /// First-moment bias correction `1 − β₁ᵗ` for the current step `t`.
    pub bc1: f32,
    /// Second-moment bias correction `1 − β₂ᵗ` for the current step `t`.
    pub bc2: f32,
}

/// Scalar reference body of the fused Adam row update — the exact
/// expression sequence the sparse Adam optimizer historically ran, kept as
/// the bitwise ground truth the AVX2 variant is validated against.
#[inline(always)]
fn adam_update_body(params: &mut [f32], grads: &[f32], m: &mut [f32], v: &mut [f32], h: &AdamParams) {
    for i in 0..params.len() {
        let g = grads[i];
        m[i] = h.beta1 * m[i] + (1.0 - h.beta1) * g;
        v[i] = h.beta2 * v[i] + (1.0 - h.beta2) * g * g;
        let m_hat = m[i] / h.bc1;
        let v_hat = v[i] / h.bc2;
        params[i] -= h.lr * m_hat / (v_hat.sqrt() + h.eps);
    }
}

/// Fused sparse-Adam row update: in one pass over the row,
/// `m ← β₁·m + (1−β₁)·g`, `v ← β₂·v + (1−β₂)·g·g`, then
/// `θ ← θ − lr·(m/bc1) / (√(v/bc2) + ε)`.
///
/// Every path uses only exactly-rounded operations (mul, add, div, sqrt —
/// no FMA), so the result is bit-identical to the scalar loop regardless
/// of dispatch, and per-element, so updating disjoint rows in any order or
/// from any number of threads cannot change a single bit.
///
/// # Panics
/// Panics when the four slices disagree in length.
#[inline]
pub fn adam_update_fast(params: &mut [f32], grads: &[f32], m: &mut [f32], v: &mut [f32], h: &AdamParams) {
    assert_eq!(params.len(), grads.len(), "adam_update: grads length mismatch");
    assert_eq!(params.len(), m.len(), "adam_update: m length mismatch");
    assert_eq!(params.len(), v.len(), "adam_update: v length mismatch");
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2 is available.
        return unsafe { x86::adam_update(params, grads, m, v, h) };
    }
    adam_update_body(params, grads, m, v, h)
}

/// Target working-set size for one column block of B: sized so a block of
/// entity rows stays resident in L2 while every query row streams past it.
const BLOCK_BYTES: usize = 256 * 1024;

/// Rows of B per cache block for inner dimension `k`.
#[inline]
fn rows_per_block(k: usize) -> usize {
    (BLOCK_BYTES / (std::mem::size_of::<f32>() * k.max(1))).clamp(8, 8192)
}

#[inline(always)]
fn gemm_nt_body<const FMA: bool>(a: &[f32], b: &[f32], k: usize, out: &mut [f32]) {
    let m = a.len() / k;
    let n = b.len() / k;
    let nb = rows_per_block(k);
    for (block_idx, bblock) in b.chunks(nb * k).enumerate() {
        let j0 = block_idx * nb;
        let bn = bblock.len() / k;
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n + j0..i * n + j0 + bn];
            for (j, slot) in orow.iter_mut().enumerate() {
                *slot = dot_body::<FMA>(arow, &bblock[j * k..(j + 1) * k]);
            }
        }
    }
}

/// Cache-blocked `out = A · Bᵀ` for row-major `A` (`m×k`) and `B` (`n×k`):
/// `out[i·n + j] = Σ_d A[i,d]·B[j,d]`.
///
/// `B`'s rows are processed in L2-sized blocks and every `A` row visits the
/// hot block before the next one is loaded, so `B` (the entity table, which
/// at WN18 scale is tens of MB) is streamed from memory once per `m`-row
/// block of queries instead of once per query. Each output element is
/// reduced exactly like one [`dot_fast`] call on the corresponding rows —
/// see the module-level determinism contract.
///
/// # Panics
/// Panics when `a.len()` or `b.len()` is not a multiple of `k`, or when
/// `out.len() != (a.len()/k) · (b.len()/k)`.
pub fn gemm_nt(a: &[f32], b: &[f32], k: usize, out: &mut [f32]) {
    assert!(k > 0, "gemm_nt needs a positive inner dimension");
    assert_eq!(a.len() % k, 0, "A length {} is not a multiple of k = {k}", a.len());
    assert_eq!(b.len() % k, 0, "B length {} is not a multiple of k = {k}", b.len());
    assert_eq!(
        out.len(),
        (a.len() / k) * (b.len() / k),
        "out must hold m×n = {}×{} scores",
        a.len() / k,
        b.len() / k
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2+FMA are available.
        return unsafe { x86::gemm_nt(a, b, k, out) };
    }
    gemm_nt_body::<false>(a, b, k, out)
}

/// Gathered batch of dot products over row-major tables: for each index
/// pair `(ai, bi)` in `pairs`,
/// `out[p] = Σ_d A[ai,d]·B[bi,d]` where `A` is `a` viewed as `m×k` and `B`
/// is `b` viewed as `n×k`.
///
/// This is the trainer's forward kernel: `a` holds one anchor context per
/// (entity, relation) group, `b` is the entity table, and `pairs` selects
/// (context, candidate) combinations — an irregular access pattern that
/// [`gemm_nt`] (dense `m×n`) cannot express without scoring every entity.
/// The AVX2+FMA dispatch is hoisted out of the loop, and each output
/// element is reduced exactly like one [`dot_fast`] call on the
/// corresponding rows — see the module-level determinism contract.
///
/// # Panics
/// Panics when `a.len()` or `b.len()` is not a multiple of `k`, when
/// `out.len() != pairs.len()`, or when any index in `pairs` is out of
/// range for its table.
pub fn dot_gather(a: &[f32], b: &[f32], k: usize, pairs: &[(u32, u32)], out: &mut [f32]) {
    assert!(k > 0, "dot_gather needs a positive inner dimension");
    assert_eq!(a.len() % k, 0, "A length {} is not a multiple of k = {k}", a.len());
    assert_eq!(b.len() % k, 0, "B length {} is not a multiple of k = {k}", b.len());
    assert_eq!(out.len(), pairs.len(), "out must hold one score per index pair");
    let (m, n) = (a.len() / k, b.len() / k);
    for &(ai, bi) in pairs {
        assert!((ai as usize) < m, "row index {ai} out of range for A ({m} rows)");
        assert!((bi as usize) < n, "row index {bi} out of range for B ({n} rows)");
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2+FMA are available, and every
        // index was bounds-checked above.
        return unsafe { x86::dot_gather(a, b, k, pairs, out) };
    }
    for (slot, &(ai, bi)) in out.iter_mut().zip(pairs) {
        *slot = dot_body::<false>(&a[ai as usize * k..(ai as usize + 1) * k], &b[bi as usize * k..(bi as usize + 1) * k]);
    }
}

/// Scalar body of [`gemm_nn_acc`]: same blocking as the AVX2 variant,
/// plain mul/add AXPY inner op.
#[inline(always)]
fn gemm_nn_acc_body(w: &[f32], b: &[f32], k: usize, out: &mut [f32]) {
    let n = b.len() / k;
    let m = out.len() / k;
    let nb = rows_per_block(k);
    for (block_idx, bblock) in b.chunks(nb * k).enumerate() {
        let e0 = block_idx * nb;
        let bn = bblock.len() / k;
        for i in 0..m {
            let orow = &mut out[i * k..(i + 1) * k];
            for e in 0..bn {
                axpy_body(w[i * n + e0 + e], &bblock[e * k..(e + 1) * k], orow);
            }
        }
    }
}

/// Cache-blocked `out += W · B` for row-major `W` (`m×n`) and `B` (`n×k`):
/// `out[i·k + d] += Σ_e W[i,e]·B[e,d]`.
///
/// This is the k-vs-all backward's **pass A**: `W` holds softmax residuals,
/// `B` is the entity table, and each output row becomes the gradient of the
/// loss w.r.t. one anchor context. `B`'s rows are processed in L2-sized
/// blocks (each block visits every output row before the next block
/// loads), which only changes *when* a given `(i, e)` rank-1 contribution
/// happens — per output row the reduction over `e` is always ascending,
/// for **any** block size, because the block loop itself walks `e`
/// ascending. Combined with the plain mul/add (no-FMA) AXPY inner op —
/// whose SIMD lanes are bit-equal to the scalar expression — the result is
/// bit-identical to the naive ascending scalar loop.
///
/// # Panics
/// Panics when the shapes disagree (`b.len()` not a multiple of `k`,
/// `out.len()` not a multiple of `k`, or `w.len() != (out.len()/k) ·
/// (b.len()/k)`).
pub fn gemm_nn_acc(w: &[f32], b: &[f32], k: usize, out: &mut [f32]) {
    assert!(k > 0, "gemm_nn_acc needs a positive inner dimension");
    assert_eq!(b.len() % k, 0, "B length {} is not a multiple of k = {k}", b.len());
    assert_eq!(out.len() % k, 0, "out length {} is not a multiple of k = {k}", out.len());
    let (m, n) = (out.len() / k, b.len() / k);
    assert_eq!(w.len(), m * n, "W must hold m×n = {m}×{n} weights");
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2 is available; shapes were
        // checked above.
        return unsafe { x86::gemm_nn_acc(w, b, k, out) };
    }
    gemm_nn_acc_body(w, b, k, out)
}

/// Scalar body of [`gemm_tn_acc`]: same blocking as the AVX2 variant,
/// plain mul/add AXPY inner op.
#[inline(always)]
fn gemm_tn_acc_body(w: &[f32], n: usize, ctxs: &[f32], k: usize, e0: usize, out: &mut [f32]) {
    let m = ctxs.len() / k;
    let rows = out.len() / k;
    let gb = rows_per_block(k);
    let mut g0 = 0usize;
    while g0 < m {
        let gn = gb.min(m - g0);
        for e in 0..rows {
            let orow = &mut out[e * k..(e + 1) * k];
            for g in g0..g0 + gn {
                axpy_body(w[g * n + e0 + e], &ctxs[g * k..(g + 1) * k], orow);
            }
        }
        g0 += gn;
    }
}

/// Row range `[e0, e0 + out.len()/k)` of the cache-blocked
/// `out += Wᵀ · C` for row-major `W` (`m×n`) and `C` (`m×k`):
/// `out[(e−e0)·k + d] += Σ_g W[g,e]·C[g,d]`.
///
/// This is the k-vs-all backward's **pass B**: `W` holds softmax
/// residuals, `C` the anchor contexts, and output row `e − e0` accumulates
/// the gradient of the loss w.r.t. entity `e`'s embedding row. The row
/// range lets callers shard the entity table across workers: each output
/// row's reduction over `g` is a single ascending scan regardless of
/// `e0`/range split *and* of the `C`-block size (the block loop walks `g`
/// ascending), so any sharding produces identical bits. Inner op is the
/// plain mul/add (no-FMA) AXPY, bit-equal to the scalar expression per
/// element.
///
/// # Panics
/// Panics when shapes disagree (`ctxs.len()` not a multiple of `k`,
/// `out.len()` not a multiple of `k`, `w.len() != (ctxs.len()/k)·n`, or
/// the row range `[e0, e0 + out.len()/k)` falling outside `[0, n)`).
pub fn gemm_tn_acc(w: &[f32], n: usize, ctxs: &[f32], k: usize, e0: usize, out: &mut [f32]) {
    assert!(k > 0, "gemm_tn_acc needs a positive inner dimension");
    assert_eq!(ctxs.len() % k, 0, "C length {} is not a multiple of k = {k}", ctxs.len());
    assert_eq!(out.len() % k, 0, "out length {} is not a multiple of k = {k}", out.len());
    let m = ctxs.len() / k;
    assert_eq!(w.len(), m * n, "W must hold m×n = {m}×{n} weights");
    assert!(e0 + out.len() / k <= n, "row range [{e0}, {}) exceeds n = {n}", e0 + out.len() / k);
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2 is available; shapes were
        // checked above.
        return unsafe { x86::gemm_tn_acc(w, n, ctxs, k, e0, out) };
    }
    gemm_tn_acc_body(w, n, ctxs, k, e0, out)
}

/// Straightforward f64-accumulating reference for [`gemm_nt`], used by
/// tests and benchmarks as the ground truth.
pub fn gemm_nt_ref(a: &[f32], b: &[f32], k: usize, out: &mut [f32]) {
    assert!(k > 0);
    assert_eq!(a.len() % k, 0);
    assert_eq!(b.len() % k, 0);
    let (m, n) = (a.len() / k, b.len() / k);
    assert_eq!(out.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for d in 0..k {
                acc += f64::from(a[i * k + d]) * f64::from(b[j * k + d]);
            }
            out[i * n + j] = acc as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_vec(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn dot_fast_matches_reference_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in [0, 1, 7, 8, 9, 63, 400, 401] {
            let a = random_vec(&mut rng, len);
            let b = random_vec(&mut rng, len);
            let fast = dot_fast(&a, &b);
            let reference = vecops::dot(&a, &b);
            assert!(
                (fast - reference).abs() <= 1e-4 * (1.0 + reference.abs()),
                "len {len}: {fast} vs {reference}"
            );
        }
    }

    #[test]
    fn trilinear_fast_matches_reference_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(2);
        for len in [0, 3, 8, 17, 100, 400] {
            let a = random_vec(&mut rng, len);
            let b = random_vec(&mut rng, len);
            let c = random_vec(&mut rng, len);
            let fast = trilinear_fast(&a, &b, &c);
            let reference = vecops::trilinear(&a, &b, &c);
            assert!(
                (fast - reference).abs() <= 1e-4 * (1.0 + reference.abs()),
                "len {len}: {fast} vs {reference}"
            );
        }
    }

    #[test]
    fn hadamard_axpy_fast_matches_reference_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [0, 5, 8, 33, 200] {
            let a = random_vec(&mut rng, len);
            let b = random_vec(&mut rng, len);
            let mut fast = random_vec(&mut rng, len);
            let mut reference = fast.clone();
            hadamard_axpy_fast(0.7, &a, &b, &mut fast);
            vecops::hadamard_axpy(0.7, &a, &b, &mut reference);
            for (f, r) in fast.iter().zip(&reference) {
                assert!((f - r).abs() <= 1e-5 * (1.0 + r.abs()), "len {len}: {f} vs {r}");
            }
        }
    }

    #[test]
    fn gemm_matches_per_row_dot_bitwise() {
        // The determinism contract: every gemm output element must be the
        // exact bits dot_fast produces on the same rows, for shapes that
        // cross the cache-block boundary.
        let mut rng = StdRng::seed_from_u64(4);
        for (m, n, k) in [(1, 1, 1), (3, 5, 7), (4, 300, 8), (2, 9000, 64), (5, 70_000, 12)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, n * k);
            let mut out = vec![0.0f32; m * n];
            gemm_nt(&a, &b, k, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let expect = dot_fast(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
                    assert_eq!(
                        out[i * n + j].to_bits(),
                        expect.to_bits(),
                        "({m},{n},{k}) element ({i},{j}): {} vs {expect}",
                        out[i * n + j]
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_matches_scalar_reference_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(5);
        for (m, n, k) in [(2, 3, 4), (8, 1000, 400), (1, 17, 31)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, n * k);
            let mut fast = vec![0.0f32; m * n];
            let mut reference = vec![0.0f32; m * n];
            gemm_nt(&a, &b, k, &mut fast);
            gemm_nt_ref(&a, &b, k, &mut reference);
            for (f, r) in fast.iter().zip(&reference) {
                assert!(
                    (f - r).abs() <= 1e-5 * (1.0 + r.abs()),
                    "({m},{n},{k}): {f} vs {r}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out must hold")]
    fn gemm_rejects_wrong_output_shape() {
        gemm_nt(&[1.0, 2.0], &[3.0, 4.0], 2, &mut [0.0, 0.0]);
    }

    #[test]
    fn dot_gather_matches_dot_fast_bitwise() {
        // Same contract as gemm: every gathered score must carry the exact
        // bits dot_fast produces on the same rows, including duplicate and
        // out-of-order index pairs and lengths that exercise the SIMD tail.
        let mut rng = StdRng::seed_from_u64(6);
        for (m, n, k) in [(1, 1, 1), (4, 9, 13), (7, 300, 8), (3, 1000, 400)] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, n * k);
            let pairs: Vec<(u32, u32)> = (0..64)
                .map(|_| (rng.gen_range(0..m as u32), rng.gen_range(0..n as u32)))
                .collect();
            let mut out = vec![0.0f32; pairs.len()];
            dot_gather(&a, &b, k, &pairs, &mut out);
            for (p, &(ai, bi)) in pairs.iter().enumerate() {
                let (ai, bi) = (ai as usize, bi as usize);
                let expect = dot_fast(&a[ai * k..(ai + 1) * k], &b[bi * k..(bi + 1) * k]);
                assert_eq!(
                    out[p].to_bits(),
                    expect.to_bits(),
                    "({m},{n},{k}) pair {p} = ({ai},{bi}): {} vs {expect}",
                    out[p]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dot_gather_rejects_out_of_range_indices() {
        let mut out = [0.0f32];
        dot_gather(&[1.0, 2.0], &[3.0, 4.0], 2, &[(0, 1)], &mut out);
    }

    /// The naive ascending reference both backward kernels must reproduce
    /// bitwise: per output row, accumulate rank-1 contributions in
    /// ascending reduction order with the plain mul/add expression.
    fn naive_wsum_rows(w: &[f32], rows: &[f32], k: usize, n: usize, out: &mut [f32]) {
        for (i, orow) in out.chunks_mut(k).enumerate() {
            for e in 0..n {
                let alpha = w[i * n + e];
                for (o, p) in orow.iter_mut().zip(&rows[e * k..(e + 1) * k]) {
                    *o += alpha * p;
                }
            }
        }
    }

    #[test]
    fn gemm_nn_acc_matches_naive_ascending_bitwise() {
        // Shapes that cross the cache-block boundary (rows_per_block(k)
        // for small k caps at 8192; k = 64 gives 1024-row blocks, so
        // n = 3000 spans three blocks). Blocking must not change bits.
        let mut rng = StdRng::seed_from_u64(31);
        for (m, n, k) in [(1, 1, 1), (3, 5, 7), (4, 300, 8), (2, 3000, 64), (5, 900, 13)] {
            let w = random_vec(&mut rng, m * n);
            let b = random_vec(&mut rng, n * k);
            let base = random_vec(&mut rng, m * k);
            let mut fast = base.clone();
            gemm_nn_acc(&w, &b, k, &mut fast);
            let mut reference = base;
            naive_wsum_rows(&w, &b, k, n, &mut reference);
            for (i, (f, r)) in fast.iter().zip(&reference).enumerate() {
                assert_eq!(f.to_bits(), r.to_bits(), "({m},{n},{k})[{i}]: {f} vs {r}");
            }
        }
    }

    #[test]
    fn gemm_tn_acc_matches_naive_ascending_bitwise() {
        // Wᵀ·C restricted to every row: per entity e, reduce over g
        // ascending. m = 3000 with k = 64 spans three g-blocks.
        let mut rng = StdRng::seed_from_u64(32);
        for (m, n, k) in [(1, 1, 1), (5, 3, 7), (300, 4, 8), (3000, 2, 64), (900, 5, 13)] {
            let w = random_vec(&mut rng, m * n);
            let ctxs = random_vec(&mut rng, m * k);
            let base = random_vec(&mut rng, n * k);
            let mut fast = base.clone();
            gemm_tn_acc(&w, n, &ctxs, k, 0, &mut fast);
            // Reference: transpose W and reuse the naive row-sum form —
            // out[e] += Σ_g ascending wT[e*m + g]·ctxs[g].
            let mut wt = vec![0.0f32; w.len()];
            for g in 0..m {
                for e in 0..n {
                    wt[e * m + g] = w[g * n + e];
                }
            }
            let mut reference = base;
            naive_wsum_rows(&wt, &ctxs, k, m, &mut reference);
            for (i, (f, r)) in fast.iter().zip(&reference).enumerate() {
                assert_eq!(f.to_bits(), r.to_bits(), "({m},{n},{k})[{i}]: {f} vs {r}");
            }
        }
    }

    #[test]
    fn gemm_tn_acc_row_range_split_is_bitwise_invariant() {
        // Sharding the output rows across any split must reproduce the
        // full-range bits — the property the parallel pass-B driver rests
        // on.
        let mut rng = StdRng::seed_from_u64(33);
        let (m, n, k) = (37, 23, 19);
        let w = random_vec(&mut rng, m * n);
        let ctxs = random_vec(&mut rng, m * k);
        let base = random_vec(&mut rng, n * k);
        let mut full = base.clone();
        gemm_tn_acc(&w, n, &ctxs, k, 0, &mut full);
        for splits in [2usize, 3, 5, 23] {
            let mut sharded = base.clone();
            let per = n.div_ceil(splits);
            let mut e0 = 0usize;
            while e0 < n {
                let e1 = (e0 + per).min(n);
                gemm_tn_acc(&w, n, &ctxs, k, e0, &mut sharded[e0 * k..e1 * k]);
                e0 = e1;
            }
            for (i, (f, r)) in sharded.iter().zip(&full).enumerate() {
                assert_eq!(f.to_bits(), r.to_bits(), "{splits} splits, [{i}]: {f} vs {r}");
            }
        }
    }

    #[test]
    fn gemm_backward_kernels_track_f64_reference() {
        // Tolerance check against an f64 ground truth, to catch a wrong
        // formula that a self-consistent bitwise test would miss.
        let mut rng = StdRng::seed_from_u64(34);
        let (m, n, k) = (6, 250, 40);
        let w = random_vec(&mut rng, m * n);
        let b = random_vec(&mut rng, n * k);
        let mut a_out = vec![0.0f32; m * k];
        gemm_nn_acc(&w, &b, k, &mut a_out);
        for i in 0..m {
            for d in 0..k {
                let mut acc = 0.0f64;
                for e in 0..n {
                    acc += f64::from(w[i * n + e]) * f64::from(b[e * k + d]);
                }
                let got = f64::from(a_out[i * k + d]);
                assert!((got - acc).abs() <= 1e-4 * (1.0 + acc.abs()), "A[{i},{d}]: {got} vs {acc}");
            }
        }
        let ctxs = random_vec(&mut rng, m * k);
        let mut t_out = vec![0.0f32; n * k];
        gemm_tn_acc(&w, n, &ctxs, k, 0, &mut t_out);
        for e in 0..n {
            for d in 0..k {
                let mut acc = 0.0f64;
                for g in 0..m {
                    acc += f64::from(w[g * n + e]) * f64::from(ctxs[g * k + d]);
                }
                let got = f64::from(t_out[e * k + d]);
                assert!((got - acc).abs() <= 1e-4 * (1.0 + acc.abs()), "B[{e},{d}]: {got} vs {acc}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "row range")]
    fn gemm_tn_acc_rejects_out_of_range_rows() {
        let mut out = [0.0f32; 4];
        gemm_tn_acc(&[1.0, 2.0], 1, &[1.0, 2.0, 3.0, 4.0], 2, 1, &mut out);
    }

    #[test]
    fn scale_add_l2_matches_scalar_bitwise() {
        // The fused row update must reproduce the exact bits of the scalar
        // accumulate loop it replaces, on lengths that hit the SIMD tail.
        let mut rng = StdRng::seed_from_u64(11);
        for len in [1usize, 7, 8, 31, 200, 400] {
            let grad = random_vec(&mut rng, len);
            let params = random_vec(&mut rng, len);
            let base = random_vec(&mut rng, len);
            let (coef, l2) = (-0.37f32, 1.25e-3f32);
            let mut fast = base.clone();
            scale_add_l2_fast(&mut fast, &grad, coef, l2, &params);
            let mut reference = base.clone();
            for i in 0..len {
                reference[i] += coef * grad[i] + l2 * params[i];
            }
            for (f, r) in fast.iter().zip(&reference) {
                assert_eq!(f.to_bits(), r.to_bits(), "len {len}: {f} vs {r}");
            }
        }
    }

    #[test]
    fn scale_write_l2_matches_zeroed_accumulate_bitwise() {
        let mut rng = StdRng::seed_from_u64(12);
        for len in [1usize, 8, 13, 200, 400] {
            let grad = random_vec(&mut rng, len);
            let params = random_vec(&mut rng, len);
            // Garbage contents must be irrelevant in write mode.
            let mut fast = random_vec(&mut rng, len);
            scale_write_l2_fast(&mut fast, &grad, 0.81, -2.5e-2, &params);
            let mut reference = vec![0.0f32; len];
            scale_add_l2_fast(&mut reference, &grad, 0.81, -2.5e-2, &params);
            for (f, r) in fast.iter().zip(&reference) {
                assert_eq!(f.to_bits(), r.to_bits(), "len {len}: {f} vs {r}");
            }
        }
    }

    #[test]
    fn axpy_fast_matches_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(13);
        for len in [1usize, 8, 31, 200, 400] {
            let params = random_vec(&mut rng, len);
            let base = random_vec(&mut rng, len);
            let mut fast = base.clone();
            axpy_fast(-1.7e-2, &params, &mut fast);
            let mut reference = base;
            for (e, p) in reference.iter_mut().zip(&params) {
                *e += -1.7e-2 * p;
            }
            for (f, r) in fast.iter().zip(&reference) {
                assert_eq!(f.to_bits(), r.to_bits(), "len {len}: {f} vs {r}");
            }
        }
    }

    #[test]
    fn hadamard_write_matches_zeroed_axpy_bitwise() {
        let mut rng = StdRng::seed_from_u64(14);
        for len in [1usize, 8, 17, 200, 400] {
            let a = random_vec(&mut rng, len);
            let b = random_vec(&mut rng, len);
            let mut fast = random_vec(&mut rng, len); // garbage must not leak
            hadamard_write_fast(0.6, &a, &b, &mut fast);
            let mut reference = vec![0.0f32; len];
            hadamard_axpy_fast(0.6, &a, &b, &mut reference);
            for (f, r) in fast.iter().zip(&reference) {
                assert_eq!(f.to_bits(), r.to_bits(), "len {len}: {f} vs {r}");
            }
        }
    }

    /// The canonical Adam hyperparameters at step t = 3.
    fn adam_params() -> AdamParams {
        AdamParams {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            bc1: 1.0 - 0.9f32.powi(3),
            bc2: 1.0 - 0.999f32.powi(3),
        }
    }

    /// Runs the scalar reference loop on clones and asserts the fast
    /// kernel reproduces every output array bit for bit.
    fn assert_adam_matches_scalar(params: &[f32], grads: &[f32], m: &[f32], v: &[f32]) {
        let h = adam_params();
        let (mut fp, mut fm, mut fv) = (params.to_vec(), m.to_vec(), v.to_vec());
        adam_update_fast(&mut fp, grads, &mut fm, &mut fv, &h);
        let (mut rp, mut rm, mut rv) = (params.to_vec(), m.to_vec(), v.to_vec());
        for i in 0..rp.len() {
            let g = grads[i];
            rm[i] = h.beta1 * rm[i] + (1.0 - h.beta1) * g;
            rv[i] = h.beta2 * rv[i] + (1.0 - h.beta2) * g * g;
            let m_hat = rm[i] / h.bc1;
            let v_hat = rv[i] / h.bc2;
            rp[i] -= h.lr * m_hat / (v_hat.sqrt() + h.eps);
        }
        for (name, fast, reference) in [("params", &fp, &rp), ("m", &fm, &rm), ("v", &fv, &rv)] {
            for (i, (f, r)) in fast.iter().zip(reference).enumerate() {
                assert_eq!(f.to_bits(), r.to_bits(), "{name}[{i}] (len {}): {f} vs {r}", fp.len());
            }
        }
    }

    #[test]
    fn adam_update_matches_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        for len in [1usize, 7, 8, 31, 200, 400] {
            let params = random_vec(&mut rng, len);
            let grads = random_vec(&mut rng, len);
            let m = random_vec(&mut rng, len);
            let v: Vec<f32> = random_vec(&mut rng, len).iter().map(|x| x * x).collect();
            assert_adam_matches_scalar(&params, &grads, &m, &v);
        }
    }

    #[test]
    fn adam_update_matches_scalar_on_adversarial_inputs() {
        // Denormals, zeros of both signs, huge magnitudes, and moment
        // states that drive the sqrt/div corner cases — the SIMD lanes
        // must track the scalar loop through all of them.
        let params = [1.0f32, -1.0, 0.0, -0.0, 3.4e38, 1e-40, 2.5, -7.125];
        let grads = [0.0f32, -0.0, 1e-42, -1e-42, 1e19, -1e19, 1e-30, 5.0];
        let m = [0.0f32, 1e-40, -1e-40, 0.5, -0.5, 1e38, 0.0, -2.0];
        let v = [0.0f32, 1e-40, 1e-40, 0.25, 0.25, 1e38, 0.0, 4.0];
        assert_adam_matches_scalar(&params, &grads, &m, &v);
        // Zero grads on zero moments: the row must still move only by the
        // exact scalar amount (which is 0 − lr·0/(0+ε) = -0·... = 0-ish).
        let zeros = [0.0f32; 8];
        assert_adam_matches_scalar(&params, &zeros, &zeros, &zeros);
    }

    #[test]
    fn rows_per_block_is_sane() {
        assert!(rows_per_block(400) >= 8);
        assert!(rows_per_block(1) <= 8192);
        // WN18 shape: a block must be much smaller than the 41k-row table.
        assert!(rows_per_block(400) < 41_000);
    }

    #[test]
    fn dispatch_is_stable() {
        let first = avx2_fma_enabled();
        for _ in 0..10 {
            assert_eq!(avx2_fma_enabled(), first);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// gemm_nt tracks the f64 scalar reference within 1e-5 relative
            /// tolerance for arbitrary shapes and values.
            #[test]
            fn gemm_tracks_reference(
                m in 1usize..6,
                n in 1usize..40,
                k in 1usize..70,
                seed in 0u64..1000
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let a = random_vec(&mut rng, m * k);
                let b = random_vec(&mut rng, n * k);
                let mut fast = vec![0.0f32; m * n];
                let mut reference = vec![0.0f32; m * n];
                gemm_nt(&a, &b, k, &mut fast);
                gemm_nt_ref(&a, &b, k, &mut reference);
                for (f, r) in fast.iter().zip(&reference) {
                    prop_assert!((f - r).abs() <= 1e-5 * (1.0 + r.abs()), "{f} vs {r}");
                }
            }

            /// The unrolled dot is invariant to being computed via gemm
            /// with any m (the blocked path never changes per-pair bits).
            #[test]
            fn single_row_gemm_is_dot(
                k in 1usize..100,
                seed in 0u64..1000
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let a = random_vec(&mut rng, k);
                let b = random_vec(&mut rng, k);
                let mut out = [0.0f32];
                gemm_nt(&a, &b, k, &mut out);
                prop_assert_eq!(out[0].to_bits(), dot_fast(&a, &b).to_bits());
            }
        }
    }
}

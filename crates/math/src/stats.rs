//! Streaming summary statistics (Welford's online algorithm).
//!
//! The bench harness averages loss values, epoch times and ranks over long
//! streams without materializing them; Welford's update keeps the variance
//! numerically stable.

/// Online mean / variance / min / max accumulator.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_is_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = RunningStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..33] {
            a.push(x);
        }
        for &x in &xs[33..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
        let empty = RunningStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }
}

//! Int8 screening kernels: the low-precision half of the quantized
//! candidate-generation pipeline (`mei-quant` → `mei-serve`).
//!
//! At serving time the exact ranking pass is a tall-skinny f32 `A · Bᵀ`
//! against the whole entity table ([`crate::kernels::gemm_nt`]). At
//! million-entity scale that pass is memory-bandwidth-bound — the table no
//! longer fits any cache, so throughput is `bytes_of_table / bandwidth` per
//! batch. Quantizing the table to per-row symmetric int8 cuts the streamed
//! bytes 4× and lets AVX2 multiply 16 candidate weights per `vpmaddwd`
//! instead of 8 per FMA; the survivors are then rescored in exact f32.
//!
//! # Determinism contract
//!
//! Everything here accumulates in **i32 integer** arithmetic. Integer
//! addition is associative and exact, so — unlike the f32 kernels, whose
//! bit-pattern depends on the reduction tree — every variant (scalar,
//! AVX2, any cache blocking, any shard split) of these kernels produces
//! **identical results by construction**. The tests still pin
//! AVX2-vs-scalar equality as a regression guard against saturation bugs
//! (`vpmaddwd` operates on sign-extended i16 lanes precisely so no
//! intermediate can saturate: `|a|,|b| ≤ 127 ⇒ |a·b| ≤ 16129`, and a pair
//! sum `≤ 32258` fits i32 with room for any practical inner dimension).

use crate::kernels::avx2_fma_enabled;
use std::sync::atomic::{AtomicU8, Ordering};

/// Dispatch cache for the packed screen GEMM: 0 = undetected,
/// 1 = portable, 2 = AVX-512 VNNI.
static VNNI_LEVEL: AtomicU8 = AtomicU8::new(0);

/// Whether the AVX-512 VNNI packed-GEMM fast path is active (detected once
/// per process). Needs `avx512f` for the 512-bit integer plumbing and
/// `avx512vnni` for `vpdpbusd`.
#[inline]
pub fn avx512_vnni_enabled() -> bool {
    match VNNI_LEVEL.load(Ordering::Relaxed) {
        0 => {
            #[cfg(target_arch = "x86_64")]
            let has = std::is_x86_feature_detected!("avx512f")
                && std::is_x86_feature_detected!("avx512vnni");
            #[cfg(not(target_arch = "x86_64"))]
            let has = false;
            VNNI_LEVEL.store(if has { 2 } else { 1 }, Ordering::Relaxed);
            has
        }
        level => level == 2,
    }
}

/// Exact i32 dot product of two i8 rows: `Σ_d a[d]·b[d]`.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8 needs equal-length rows");
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2 is available.
        return unsafe { x86::dot_i8(a, b) };
    }
    dot_i8_ref(a, b)
}

/// Scalar reference for [`dot_i8`] — the ground truth the SIMD variant
/// must match bit for bit (trivially, since i32 accumulation is exact).
pub fn dot_i8_ref(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum()
}

/// Bytes of quantized entity rows per cache block. The i8 table packs 4×
/// more rows per block than the f32 table, so the same 256 KiB working set
/// covers 4× the candidates before the next block streams in.
const QBLOCK_BYTES: usize = 256 * 1024;

/// Rows of B per cache block for inner dimension `k`.
#[inline]
fn qrows_per_block(k: usize) -> usize {
    (QBLOCK_BYTES / k.max(1)).clamp(8, 32768)
}

/// Cache-blocked `out = A · Bᵀ` over row-major **i8** inputs with exact
/// **i32** accumulation: `out[i·n + j] = Σ_d A[i,d]·B[j,d]`.
///
/// `A` is the block of quantized query contexts (`m×k`), `B` the quantized
/// entity-table shard (`n×k`). Like [`crate::kernels::gemm_nt`], `B`'s rows
/// are processed in L2-sized blocks and every `A` row visits the hot block
/// before the next one loads, so the shard streams from memory once per
/// batch of queries instead of once per query. Integer accumulation makes
/// the result independent of blocking, lane count, and instruction set —
/// see the module-level determinism contract.
///
/// # Panics
/// Panics when `a.len()` or `b.len()` is not a multiple of `k`, or when
/// `out.len() != (a.len()/k) · (b.len()/k)`.
pub fn gemm_i8_nt(a: &[i8], b: &[i8], k: usize, out: &mut [i32]) {
    assert!(k > 0, "gemm_i8_nt needs a positive inner dimension");
    assert_eq!(a.len() % k, 0, "A length {} is not a multiple of k = {k}", a.len());
    assert_eq!(b.len() % k, 0, "B length {} is not a multiple of k = {k}", b.len());
    assert_eq!(
        out.len(),
        (a.len() / k) * (b.len() / k),
        "out must hold m×n = {}×{} scores",
        a.len() / k,
        b.len() / k
    );
    #[cfg(target_arch = "x86_64")]
    if avx2_fma_enabled() {
        // SAFETY: dispatch guarantees AVX2 is available; shapes checked.
        return unsafe { x86::gemm_i8_nt(a, b, k, out) };
    }
    gemm_i8_nt_body(a, b, k, out)
}

/// Scalar body of [`gemm_i8_nt`]: same blocking, [`dot_i8_ref`] inner op.
fn gemm_i8_nt_body(a: &[i8], b: &[i8], k: usize, out: &mut [i32]) {
    let m = a.len() / k;
    let n = b.len() / k;
    let nb = qrows_per_block(k);
    for (block_idx, bblock) in b.chunks(nb * k).enumerate() {
        let j0 = block_idx * nb;
        let bn = bblock.len() / k;
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n + j0..i * n + j0 + bn];
            for (j, slot) in orow.iter_mut().enumerate() {
                *slot = dot_i8_ref(arow, &bblock[j * k..(j + 1) * k]);
            }
        }
    }
}

/// Straightforward reference for [`gemm_i8_nt`], used by tests as ground
/// truth (no blocking at all).
pub fn gemm_i8_nt_ref(a: &[i8], b: &[i8], k: usize, out: &mut [i32]) {
    assert!(k > 0);
    assert_eq!(a.len() % k, 0);
    assert_eq!(b.len() % k, 0);
    let (m, n) = (a.len() / k, b.len() / k);
    assert_eq!(out.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            out[i * n + j] = dot_i8_ref(&a[i * k..(i + 1) * k], &b[j * k..(j + 1) * k]);
        }
    }
}

/// Rows interleaved per panel in [`PackedI8`] — one i32 lane of a 512-bit
/// `vpdpbusd` per row.
const PANEL_ROWS: usize = 16;

/// Entity-table rows repacked for the VNNI screen GEMM.
///
/// The flat row-major layout forces a horizontal reduction per `(query,
/// row)` dot product. Packing interleaves `PANEL_ROWS = 16` rows so that one
/// 64-byte panel chunk holds 4 consecutive elements of 16 *different*
/// rows: a single `vpdpbusd` then advances 16 dot products at once, each
/// in its own i32 lane, and the finished panel stores straight to the
/// output — no reduction anywhere.
///
/// The kernel feeds the query side as `a ^ 0x80` (an unsigned `a + 128`
/// offset, exact for all of i8 including `-128`), so each accumulated
/// value is `Σ (a+128)·b = a·b + 128·Σb`. The pack precomputes
/// `128·Σb` per row (`sum128`) and the kernel subtracts it on store,
/// recovering the exact integer dot — same determinism contract as
/// [`gemm_i8_nt`], and bit-identical to it by construction.
///
/// Rows are padded to a multiple of `PANEL_ROWS` and the inner dimension
/// to a multiple of 4, both with zeros (zero rows have `sum128 = 0`, so
/// padding never leaks into real outputs).
#[derive(Debug, Clone)]
pub struct PackedI8 {
    panels: Vec<i8>,
    sum128: Vec<i32>,
    rows: usize,
    k: usize,
    /// `k` rounded up to a multiple of 4 (one `vpdpbusd` byte quad).
    kp: usize,
}

impl PackedI8 {
    /// Packs a row-major `n×k` i8 table (`n = b.len() / k`).
    ///
    /// # Panics
    /// Panics when `k == 0` or `b.len()` is not a multiple of `k`.
    pub fn pack(b: &[i8], k: usize) -> Self {
        assert!(k > 0, "PackedI8 needs a positive inner dimension");
        assert_eq!(b.len() % k, 0, "B length {} is not a multiple of k = {k}", b.len());
        let rows = b.len() / k;
        let kp = k.next_multiple_of(4);
        let npanels = rows.div_ceil(PANEL_ROWS);
        let mut panels = vec![0i8; npanels * PANEL_ROWS * kp];
        let mut sum128 = vec![0i32; npanels * PANEL_ROWS];
        for j in 0..rows {
            let row = &b[j * k..(j + 1) * k];
            sum128[j] = 128 * row.iter().map(|&v| i32::from(v)).sum::<i32>();
            let (p, lane) = (j / PANEL_ROWS, j % PANEL_ROWS);
            let base = p * PANEL_ROWS * kp + lane * 4;
            let full = k / 4;
            // One unaligned 4-byte copy per quad, stride 64 — the safe
            // slice form re-checks bounds per quad and costs more than
            // streaming the whole table.
            // SAFETY: the furthest write ends at
            // `base + (kp/4 − 1)·64 + 4 ≤ (p+1)·PANEL_ROWS·kp ≤ len`.
            unsafe {
                let src = row.as_ptr();
                let dst = panels.as_mut_ptr().add(base);
                for c in 0..full {
                    std::ptr::copy_nonoverlapping(src.add(c * 4), dst.add(c * PANEL_ROWS * 4), 4);
                }
            }
            for t in full * 4..k {
                panels[base + (t / 4) * PANEL_ROWS * 4 + (t % 4)] = row[t];
            }
        }
        Self { panels, sum128, rows, k, kp }
    }

    /// Number of (unpadded) table rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row length (elements per row, unpadded).
    pub fn row_len(&self) -> usize {
        self.k
    }

    /// Heap footprint in bytes (panel codes + row-sum corrections).
    pub fn memory_bytes(&self) -> usize {
        self.panels.len() + self.sum128.len() * std::mem::size_of::<i32>()
    }

    /// `out = A · Bᵀ` against packed rows `j0..j1`, exact i32 accumulation:
    /// `out[i·(j1−j0) + (j−j0)] = Σ_d A[i,d]·B[j,d]` — bit-identical to
    /// [`gemm_i8_nt`] over the same rows, on every dispatch path.
    ///
    /// # Panics
    /// Panics when `j0` is not panel-aligned (multiple of 16), the range is
    /// out of bounds, `a.len()` is not a multiple of the packed row length,
    /// or `out` is not `m × (j1−j0)`.
    pub fn gemm(&self, a: &[i8], j0: usize, j1: usize, out: &mut [i32]) {
        assert_eq!(j0 % PANEL_ROWS, 0, "row range must start on a panel boundary, got {j0}");
        assert!(j0 <= j1 && j1 <= self.rows, "row range {j0}..{j1} out of 0..{}", self.rows);
        assert_eq!(a.len() % self.k, 0, "A length {} is not a multiple of k = {}", a.len(), self.k);
        let m = a.len() / self.k;
        assert_eq!(out.len(), m * (j1 - j0), "out must hold m×n = {m}×{}", j1 - j0);
        if m == 0 || j0 == j1 {
            return;
        }
        // Offset the query block into u8 once (`a + 128`, via XOR on the
        // sign bit), padding to the packed inner dimension. The padded B
        // columns are zero, so the pad bytes contribute nothing.
        let mut au = vec![0x80u8; m * self.kp];
        for (src, dst) in a.chunks(self.k).zip(au.chunks_mut(self.kp)) {
            for (d, &v) in dst.iter_mut().zip(src) {
                *d = (v as u8) ^ 0x80;
            }
        }
        #[cfg(target_arch = "x86_64")]
        if avx512_vnni_enabled() {
            // SAFETY: dispatch guarantees AVX-512 VNNI; shapes checked.
            unsafe { x86::gemm_i8_pk(self, &au, m, j0, j1, out) };
            return;
        }
        self.gemm_scalar_body(&au, m, j0, j1, out);
    }

    /// Portable body of [`Self::gemm`]: walks the panel layout with the
    /// same offset-and-correct arithmetic as the VNNI kernel.
    fn gemm_scalar_body(&self, au: &[u8], m: usize, j0: usize, j1: usize, out: &mut [i32]) {
        let n = j1 - j0;
        for j in j0..j1 {
            let (p, lane) = (j / PANEL_ROWS, j % PANEL_ROWS);
            let panel = &self.panels[p * PANEL_ROWS * self.kp..];
            for i in 0..m {
                let arow = &au[i * self.kp..(i + 1) * self.kp];
                let mut acc = 0i32;
                for c in 0..self.kp / 4 {
                    let quad = &panel[c * PANEL_ROWS * 4 + lane * 4..][..4];
                    for t in 0..4 {
                        acc += i32::from(arow[c * 4 + t]) * i32::from(quad[t]);
                    }
                }
                out[i * n + (j - j0)] = acc - self.sum128[j];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::qrows_per_block;
    use super::{PackedI8, PANEL_ROWS};
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// i32 dot of two i8 rows: 32 bytes per iteration, each 16-byte half
    /// sign-extended to i16 lanes and reduced pairwise into i32 by
    /// `vpmaddwd`. No step can saturate (see module docs), so the result
    /// equals the scalar i32 sum exactly.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_i8_inner(a: *const i8, b: *const i8, len: usize) -> i32 {
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 32 <= len {
            let a0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.add(i) as *const __m128i));
            let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a0, b0));
            let a1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.add(i + 16) as *const __m128i));
            let b1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.add(i + 16) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a1, b1));
            i += 32;
        }
        if i + 16 <= len {
            let a0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.add(i) as *const __m128i));
            let b0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.add(i) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a0, b0));
            i += 16;
        }
        let mut lanes = [0i32; 8];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let mut s = lanes.iter().sum::<i32>();
        while i < len {
            s += i32::from(*a.add(i)) * i32::from(*b.add(i));
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        dot_i8_inner(a.as_ptr(), b.as_ptr(), a.len())
    }

    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi32(v: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
        let s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
        let s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
        _mm_cvtsi128_si32(s)
    }

    /// Four pre-widened (i16) query rows against one i8 entity row in a
    /// single sweep. Each 16-byte chunk of `b` is loaded and sign-extended
    /// **once** and multiplied into four accumulators; the query rows were
    /// widened ahead of time, so they enter via plain loads instead of
    /// `vpmovsxbw` — the widening instruction is shuffle-port-bound and
    /// would otherwise serialize the whole loop. The batch screen is bound
    /// by this kernel at million-entity scale.
    #[target_feature(enable = "avx2")]
    unsafe fn dot4_i8_inner(
        a0: *const i16,
        a1: *const i16,
        a2: *const i16,
        a3: *const i16,
        b: *const i8,
        len: usize,
    ) -> [i32; 4] {
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let mut acc2 = _mm256_setzero_si256();
        let mut acc3 = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 16 <= len {
            let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.add(i) as *const __m128i));
            let v0 = _mm256_loadu_si256(a0.add(i) as *const __m256i);
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(v0, bv));
            let v1 = _mm256_loadu_si256(a1.add(i) as *const __m256i);
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(v1, bv));
            let v2 = _mm256_loadu_si256(a2.add(i) as *const __m256i);
            acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(v2, bv));
            let v3 = _mm256_loadu_si256(a3.add(i) as *const __m256i);
            acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(v3, bv));
            i += 16;
        }
        let mut sums = [hsum_epi32(acc0), hsum_epi32(acc1), hsum_epi32(acc2), hsum_epi32(acc3)];
        while i < len {
            let bb = i32::from(*b.add(i));
            sums[0] += i32::from(*a0.add(i)) * bb;
            sums[1] += i32::from(*a1.add(i)) * bb;
            sums[2] += i32::from(*a2.add(i)) * bb;
            sums[3] += i32::from(*a3.add(i)) * bb;
            i += 1;
        }
        sums
    }

    /// Eight query rows per entity row: same structure as
    /// [`dot4_i8_inner`] with the B-chunk widening amortized twice as far.
    /// Eight accumulators plus the two live operands still fit the sixteen
    /// ymm registers.
    #[target_feature(enable = "avx2")]
    unsafe fn dot8_i8_inner(a: [*const i16; 8], b: *const i8, len: usize) -> [i32; 8] {
        let mut acc = [_mm256_setzero_si256(); 8];
        let mut i = 0usize;
        while i + 16 <= len {
            let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.add(i) as *const __m128i));
            for (r, slot) in acc.iter_mut().enumerate() {
                let v = _mm256_loadu_si256(a[r].add(i) as *const __m256i);
                *slot = _mm256_add_epi32(*slot, _mm256_madd_epi16(v, bv));
            }
            i += 16;
        }
        let mut sums = [0i32; 8];
        for (r, s) in sums.iter_mut().enumerate() {
            *s = hsum_epi32(acc[r]);
        }
        while i < len {
            let bb = i32::from(*b.add(i));
            for (r, s) in sums.iter_mut().enumerate() {
                *s += i32::from(*a[r].add(i)) * bb;
            }
            i += 1;
        }
        sums
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemm_i8_nt(a: &[i8], b: &[i8], k: usize, out: &mut [i32]) {
        let m = a.len() / k;
        let n = b.len() / k;
        let nb = qrows_per_block(k);
        // Widen the (small) query block to i16 once so the hot loop pays a
        // single sign-extend per B chunk instead of five.
        let a16: Vec<i16> = a.iter().map(|&v| i16::from(v)).collect();
        for (block_idx, bblock) in b.chunks(nb * k).enumerate() {
            let j0 = block_idx * nb;
            let bn = bblock.len() / k;
            let mut i = 0usize;
            while i + 8 <= m {
                let rows = std::array::from_fn(|r| a16.as_ptr().add((i + r) * k));
                for j in 0..bn {
                    let sums = dot8_i8_inner(rows, bblock.as_ptr().add(j * k), k);
                    for (r, s) in sums.into_iter().enumerate() {
                        out[(i + r) * n + j0 + j] = s;
                    }
                }
                i += 8;
            }
            while i + 4 <= m {
                let (a0, a1, a2, a3) = (
                    a16.as_ptr().add(i * k),
                    a16.as_ptr().add((i + 1) * k),
                    a16.as_ptr().add((i + 2) * k),
                    a16.as_ptr().add((i + 3) * k),
                );
                for j in 0..bn {
                    let sums = dot4_i8_inner(a0, a1, a2, a3, bblock.as_ptr().add(j * k), k);
                    for (r, s) in sums.into_iter().enumerate() {
                        out[(i + r) * n + j0 + j] = s;
                    }
                }
                i += 4;
            }
            while i < m {
                let arow = a.as_ptr().add(i * k);
                let orow = &mut out[i * n + j0..i * n + j0 + bn];
                for (j, slot) in orow.iter_mut().enumerate() {
                    *slot = dot_i8_inner(arow, bblock.as_ptr().add(j * k), k);
                }
                i += 1;
            }
        }
    }

    /// One query tile (`R ≤ 8` rows) against every panel in `p0..p1`.
    ///
    /// Per 64-byte panel chunk: one load, then per query row a 4-byte
    /// broadcast and one `vpdpbusd` that advances 16 dot products — the
    /// whole panel finishes with a straight 512-bit store (masked on the
    /// ragged last panel), so the kernel has no horizontal reductions and
    /// streams B exactly once.
    #[target_feature(enable = "avx512f,avx512vnni")]
    unsafe fn panel_tile<const R: usize>(
        pk: &PackedI8,
        au: &[u8],
        i0: usize,
        n: usize,
        j0: usize,
        j1: usize,
        out: &mut [i32],
    ) {
        let kp = pk.kp;
        for p in j0 / PANEL_ROWS..j1.div_ceil(PANEL_ROWS) {
            let pd = pk.panels.as_ptr().add(p * PANEL_ROWS * kp);
            let mut acc = [_mm512_setzero_si512(); R];
            for c in 0..kp / 4 {
                let pv = _mm512_loadu_si512(pd.add(c * PANEL_ROWS * 4) as *const __m512i);
                for (r, slot) in acc.iter_mut().enumerate() {
                    let w = (au.as_ptr().add((i0 + r) * kp + c * 4) as *const i32).read_unaligned();
                    *slot = _mm512_dpbusd_epi32(*slot, _mm512_set1_epi32(w), pv);
                }
            }
            let corr =
                _mm512_loadu_si512(pk.sum128.as_ptr().add(p * PANEL_ROWS) as *const __m512i);
            let jbase = p * PANEL_ROWS;
            let valid = (j1 - jbase).min(PANEL_ROWS);
            for (r, &a) in acc.iter().enumerate() {
                let res = _mm512_sub_epi32(a, corr);
                let dst = out.as_mut_ptr().add((i0 + r) * n + (jbase - j0));
                if valid == PANEL_ROWS {
                    _mm512_storeu_si512(dst as *mut __m512i, res);
                } else {
                    _mm512_mask_storeu_epi32(dst, (1u16 << valid) - 1, res);
                }
            }
        }
    }

    /// AVX-512 VNNI body of [`PackedI8::gemm`]: query rows in tiles of
    /// eight (enough accumulators to hide `vpdpbusd` latency while leaving
    /// registers for the panel stream), remainder handled by narrower
    /// monomorphized tiles.
    #[target_feature(enable = "avx512f,avx512vnni")]
    pub(super) unsafe fn gemm_i8_pk(
        pk: &PackedI8,
        au: &[u8],
        m: usize,
        j0: usize,
        j1: usize,
        out: &mut [i32],
    ) {
        let n = j1 - j0;
        let mut i = 0usize;
        while i + 8 <= m {
            panel_tile::<8>(pk, au, i, n, j0, j1, out);
            i += 8;
        }
        match m - i {
            0 => {}
            1 => panel_tile::<1>(pk, au, i, n, j0, j1, out),
            2 => panel_tile::<2>(pk, au, i, n, j0, j1, out),
            3 => panel_tile::<3>(pk, au, i, n, j0, j1, out),
            4 => panel_tile::<4>(pk, au, i, n, j0, j1, out),
            5 => panel_tile::<5>(pk, au, i, n, j0, j1, out),
            6 => panel_tile::<6>(pk, au, i, n, j0, j1, out),
            7 => panel_tile::<7>(pk, au, i, n, j0, j1, out),
            _ => unreachable!("tile loop leaves a remainder below 8"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_i8(rng: &mut StdRng, len: usize) -> Vec<i8> {
        (0..len).map(|_| rng.gen_range(-127i32..=127) as i8).collect()
    }

    #[test]
    fn dot_i8_matches_scalar_reference_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in [0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 100, 400, 401] {
            let a = random_i8(&mut rng, len);
            let b = random_i8(&mut rng, len);
            assert_eq!(dot_i8(&a, &b), dot_i8_ref(&a, &b), "len {len}");
        }
    }

    #[test]
    fn dot_i8_extreme_values_cannot_saturate() {
        // Worst case for the i16 pair sums inside vpmaddwd: every product
        // is 127·127 (or mixed signs). The sign-extended path must carry
        // these exactly.
        for (x, y) in [(127i8, 127i8), (-127, -127), (127, -127), (-128, -128)] {
            for len in [16, 32, 48, 1024] {
                let a = vec![x; len];
                let b = vec![y; len];
                assert_eq!(dot_i8(&a, &b), dot_i8_ref(&a, &b), "x={x} y={y} len={len}");
                assert_eq!(dot_i8_ref(&a, &b), i32::from(x) * i32::from(y) * len as i32);
            }
        }
    }

    #[test]
    fn gemm_i8_nt_is_bit_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(2);
        for (m, n, k) in [(1, 1, 1), (3, 7, 5), (2, 40, 16), (4, 300, 33), (1, 2000, 64)] {
            let a = random_i8(&mut rng, m * k);
            let b = random_i8(&mut rng, n * k);
            let mut fast = vec![0i32; m * n];
            let mut reference = vec![0i32; m * n];
            gemm_i8_nt(&a, &b, k, &mut fast);
            gemm_i8_nt_ref(&a, &b, k, &mut reference);
            assert_eq!(fast, reference, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn gemm_i8_nt_scalar_body_matches_reference_across_block_splits() {
        // The blocked scalar body must agree with the unblocked reference
        // regardless of where block boundaries fall (exercised by shapes
        // around the rows-per-block clamp).
        let mut rng = StdRng::seed_from_u64(3);
        let k = 24;
        for n in [7, 8, 9, 4095, 4096, 4097] {
            let a = random_i8(&mut rng, 2 * k);
            let b = random_i8(&mut rng, n * k);
            let mut blocked = vec![0i32; 2 * n];
            let mut reference = vec![0i32; 2 * n];
            gemm_i8_nt_body(&a, &b, k, &mut blocked);
            gemm_i8_nt_ref(&a, &b, k, &mut reference);
            assert_eq!(blocked, reference, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of k")]
    fn gemm_i8_nt_rejects_ragged_inputs() {
        let mut out = [0i32; 1];
        gemm_i8_nt(&[1, 2, 3], &[1, 2], 2, &mut out);
    }

    #[test]
    fn packed_gemm_is_bit_identical_to_reference() {
        // Shapes straddle every padding boundary: ragged last panel
        // (n % 16), ragged byte quad (k % 4), and m around the 8-row tile.
        let mut rng = StdRng::seed_from_u64(4);
        for (m, n, k) in
            [(1, 1, 1), (3, 15, 5), (8, 16, 4), (9, 17, 7), (2, 100, 33), (5, 2000, 256)]
        {
            let a = random_i8(&mut rng, m * k);
            let b = random_i8(&mut rng, n * k);
            let packed = PackedI8::pack(&b, k);
            assert_eq!(packed.rows(), n);
            assert_eq!(packed.row_len(), k);
            let mut fast = vec![0i32; m * n];
            let mut reference = vec![0i32; m * n];
            packed.gemm(&a, 0, n, &mut fast);
            gemm_i8_nt_ref(&a, &b, k, &mut reference);
            assert_eq!(fast, reference, "m={m} n={n} k={k}");
        }
    }

    #[test]
    fn packed_gemm_handles_full_i8_range() {
        // The u8 offset trick (`a ^ 0x80`) must be exact for every code
        // point, including -128 on both sides.
        let k = 12;
        let a: Vec<i8> = (0..2 * k).map(|i| [-128i8, 127, -1, 0][i % 4]).collect();
        let b: Vec<i8> = (0..5 * k).map(|i| [127i8, -128, 1, -127, 0][i % 5]).collect();
        let packed = PackedI8::pack(&b, k);
        let mut fast = vec![0i32; 2 * 5];
        let mut reference = vec![0i32; 2 * 5];
        packed.gemm(&a, 0, 5, &mut fast);
        gemm_i8_nt_ref(&a, &b, k, &mut reference);
        assert_eq!(fast, reference);
    }

    #[test]
    fn packed_gemm_row_ranges_match_full_pass() {
        // Shard-style panel-aligned sub-ranges must agree with the
        // corresponding columns of a whole-table pass.
        let mut rng = StdRng::seed_from_u64(5);
        let (m, n, k) = (3, 70, 24);
        let a = random_i8(&mut rng, m * k);
        let b = random_i8(&mut rng, n * k);
        let packed = PackedI8::pack(&b, k);
        let mut full = vec![0i32; m * n];
        packed.gemm(&a, 0, n, &mut full);
        for (j0, j1) in [(0, 16), (16, 48), (48, 70), (64, 70), (16, 16)] {
            let mut part = vec![0i32; m * (j1 - j0)];
            packed.gemm(&a, j0, j1, &mut part);
            for i in 0..m {
                assert_eq!(
                    &part[i * (j1 - j0)..(i + 1) * (j1 - j0)],
                    &full[i * n + j0..i * n + j1],
                    "rows {j0}..{j1}"
                );
            }
        }
    }

    #[test]
    fn packed_gemm_scalar_body_matches_reference() {
        // The portable body must stay exact on machines where the VNNI
        // dispatch would normally shadow it.
        let mut rng = StdRng::seed_from_u64(6);
        let (m, n, k) = (4, 33, 10);
        let a = random_i8(&mut rng, m * k);
        let b = random_i8(&mut rng, n * k);
        let packed = PackedI8::pack(&b, k);
        let kp = k.next_multiple_of(4);
        let mut au = vec![0x80u8; m * kp];
        for (src, dst) in a.chunks(k).zip(au.chunks_mut(kp)) {
            for (d, &v) in dst.iter_mut().zip(src) {
                *d = (v as u8) ^ 0x80;
            }
        }
        let mut scalar = vec![0i32; m * n];
        let mut reference = vec![0i32; m * n];
        packed.gemm_scalar_body(&au, m, 0, n, &mut scalar);
        gemm_i8_nt_ref(&a, &b, k, &mut reference);
        assert_eq!(scalar, reference);
    }

    #[test]
    #[should_panic(expected = "panel boundary")]
    fn packed_gemm_rejects_unaligned_range() {
        let packed = PackedI8::pack(&[1i8; 64], 2);
        let mut out = [0i32; 2];
        packed.gemm(&[1, 2], 7, 9, &mut out);
    }
}

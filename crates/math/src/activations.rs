//! Numerically stable activation functions and their derivatives.
//!
//! The paper's loss (Eq. 16) is `log(1 + e^{-y·s})` (softplus of `-y·s`) and
//! its weight-restriction experiments (§3.3) pass the interaction weight
//! vector ω through `tanh`, `sigmoid` or `softmax`. These are the exact
//! primitives implemented here, each with the derivative the analytic
//! backward pass needs.

/// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`, stable for large `|x|`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Derivative of the sigmoid expressed through its output:
/// `σ'(x) = σ(x)·(1 − σ(x))`.
#[inline]
pub fn sigmoid_grad_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// Softplus `log(1 + e^x)`, stable for large `|x|`.
///
/// For `x ≫ 0` the naive form overflows; we use the identity
/// `softplus(x) = max(x, 0) + log(1 + e^{-|x|})`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

/// Derivative of softplus: `softplus'(x) = σ(x)`.
#[inline]
pub fn softplus_grad(x: f32) -> f32 {
    sigmoid(x)
}

/// Hyperbolic tangent (thin wrapper so all activations live here).
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh expressed through its output: `1 − tanh(x)²`.
#[inline]
pub fn tanh_grad_from_output(t: f32) -> f32 {
    1.0 - t * t
}

/// Applies `tanh` element-wise into `out`.
pub fn tanh_vec(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, v) in out.iter_mut().zip(x) {
        *o = v.tanh();
    }
}

/// Applies the logistic sigmoid element-wise into `out`.
pub fn sigmoid_vec(x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, v) in out.iter_mut().zip(x) {
        *o = sigmoid(*v);
    }
}

/// In-place stable softmax: `x[i] ← e^{x[i] − max} / Σ_j e^{x[j] − max}`.
///
/// An empty slice is a no-op.
pub fn softmax_in_place(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f64;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        sum += f64::from(*v);
    }
    let inv = (1.0 / sum) as f32;
    for v in x {
        *v *= inv;
    }
}

/// Backpropagates through a softmax whose forward output was `y`:
/// given `dL/dy`, writes `dL/dx` into `grad_in`.
///
/// Uses the Jacobian-vector product
/// `dL/dx_i = y_i · (dL/dy_i − Σ_j dL/dy_j · y_j)`.
pub fn softmax_backward(y: &[f32], grad_out: &[f32], grad_in: &mut [f32]) {
    debug_assert_eq!(y.len(), grad_out.len());
    debug_assert_eq!(y.len(), grad_in.len());
    let inner: f64 = y
        .iter()
        .zip(grad_out)
        .map(|(yi, gi)| f64::from(*yi) * f64::from(*gi))
        .sum();
    for i in 0..y.len() {
        grad_in[i] = y[i] * (grad_out[i] - inner as f32);
    }
}

/// `log(σ(x))` computed stably as `−softplus(−x)`.
#[inline]
pub fn log_sigmoid(x: f32) -> f32 {
    -softplus(-x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn sigmoid_reference_points() {
        assert!(close(sigmoid(0.0), 0.5));
        assert!(close(sigmoid(2.0), 1.0 / (1.0 + (-2.0f32).exp())));
        assert!(close(sigmoid(-2.0), 1.0 - sigmoid(2.0)));
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn softplus_reference_points() {
        assert!(close(softplus(0.0), std::f32::consts::LN_2));
        // For large x, softplus(x) ≈ x.
        assert!(close(softplus(100.0), 100.0));
        assert!(close(softplus(-100.0), 0.0));
        assert!(softplus(1000.0).is_finite());
    }

    #[test]
    fn softplus_grad_is_sigmoid() {
        for &x in &[-3.0f32, -0.5, 0.0, 0.7, 4.0] {
            let eps = 1e-3;
            let fd = (softplus(x + eps) - softplus(x - eps)) / (2.0 * eps);
            assert!((softplus_grad(x) - fd).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn softmax_sums_to_one_and_preserves_order() {
        let mut x = [1.0f32, 2.0, 3.0];
        softmax_in_place(&mut x);
        let s: f32 = x.iter().sum();
        assert!(close(s, 1.0));
        assert!(x[0] < x[1] && x[1] < x[2]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = [1.0f32, 2.0, 3.0];
        let mut b = [1001.0f32, 1002.0, 1003.0];
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!(close(*x, *y));
        }
    }

    #[test]
    fn softmax_empty_is_noop() {
        let mut x: [f32; 0] = [];
        softmax_in_place(&mut x);
    }

    #[test]
    fn softmax_backward_matches_finite_differences() {
        let x = [0.3f32, -1.0, 0.8, 0.1];
        let upstream = [0.2f32, -0.4, 0.9, 0.05];
        let mut y = x;
        softmax_in_place(&mut y);
        let mut grad = [0.0f32; 4];
        softmax_backward(&y, &upstream, &mut grad);

        let loss = |inp: &[f32; 4]| -> f32 {
            let mut s = *inp;
            softmax_in_place(&mut s);
            s.iter().zip(&upstream).map(|(a, b)| a * b).sum()
        };
        for i in 0..4 {
            let eps = 1e-3;
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!((grad[i] - fd).abs() < 1e-3, "i={i} grad={} fd={fd}", grad[i]);
        }
    }

    #[test]
    fn log_sigmoid_is_stable() {
        assert!(close(log_sigmoid(0.0), 0.5f32.ln()));
        assert!(log_sigmoid(-1000.0).is_finite());
        assert!(close(log_sigmoid(1000.0), 0.0));
    }

    #[test]
    fn tanh_grad_matches_finite_differences() {
        for &x in &[-2.0f32, -0.3, 0.0, 1.1] {
            let eps = 1e-3;
            let fd = (tanh(x + eps) - tanh(x - eps)) / (2.0 * eps);
            assert!((tanh_grad_from_output(tanh(x)) - fd).abs() < 1e-3);
        }
    }

    #[test]
    fn vector_activations_apply_elementwise() {
        let x = [0.0f32, 1.0, -1.0];
        let mut t = [0.0f32; 3];
        let mut s = [0.0f32; 3];
        tanh_vec(&x, &mut t);
        sigmoid_vec(&x, &mut s);
        assert!(close(t[0], 0.0) && close(t[1], 1.0f32.tanh()));
        assert!(close(s[0], 0.5) && close(s[2], sigmoid(-1.0)));
    }
}

//! Block-term (Tucker) contraction kernels for the MEI K×Ce×Cr family.
//!
//! A block-term model splits an entity row into `K` partitions of `Ce`
//! embedding vectors and a relation row into `K` partitions of `Cr`
//! vectors; partition `p` contracts its head, relation, and tail blocks
//! through a `Ce×Cr×Ce` core tensor `G_p`, and the score is the sum over
//! partitions:
//!
//! `S(h, t, r) = Σ_p Σ_{a,b,c} G_p[a,b,c] · ⟨h⁽ᵖ·ᶜᵉ⁺ᵃ⁾, t⁽ᵖ·ᶜᵉ⁺ᶜ⁾, r⁽ᵖ·ᶜʳ⁺ᵇ⁾⟩`
//!
//! On the unified `n³` grid this is exactly an ω weight vector whose
//! support is restricted to the K block-diagonal cells, so these kernels
//! are *walk-order replicas* of the generic ω term walk: each function
//! performs the identical sequence of [`hadamard_axpy_fast`] /
//! [`trilinear_fast`] calls (same operands, same order, same zero-skip)
//! that the generic walk performs over the support cells. That makes the
//! block path bit-identical to the ω path by construction — the property
//! `mei-core`'s `block_term_parity` suite asserts bytewise.
//!
//! The packed core layout is `core[((p·Ce + a)·Ce + c)·Cr + b]` — the
//! support cells enumerated in `(p, a, c, b)` order, which is the grid's
//! `i`-major `(i, j, k)` order restricted to the support.

use crate::kernels::{hadamard_axpy_fast, trilinear_fast};

/// Index into the packed core tensor: `(p, a, c, b) → flat`.
#[inline]
pub fn core_index(ce: usize, cr: usize, p: usize, a: usize, c: usize, b: usize) -> usize {
    ((p * ce + a) * ce + c) * cr + b
}

/// Tail-side interaction context for a block-term model:
/// `ctx⁽ᵖ·ᶜᵉ⁺ᶜ⁾ += G_p[a,b,c] · h⁽ᵖ·ᶜᵉ⁺ᵃ⁾ ⊙ r⁽ᵖ·ᶜʳ⁺ᵇ⁾`, summed over
/// `(p, a, b)`. `ctx` must be zeroed (or hold a partial sum) on entry;
/// zero-weight core cells are skipped exactly like the generic ω walk.
///
/// `head` has `k·ce·dim` floats, `rel` has `k·cr·dim`, `ctx` `k·ce·dim`.
///
/// ```
/// // One partition, Ce = Cr = 1, core = [2.0]: ctx = 2·h⊙r.
/// let (h, r) = ([1.0f32, -3.0], [0.5f32, 2.0]);
/// let mut ctx = [0.0f32; 2];
/// mei_math::block::block_tail_context(&h, &r, &[2.0], 1, 1, 1, 2, &mut ctx);
/// assert_eq!(ctx, [1.0, -12.0]);
/// ```
#[allow(clippy::too_many_arguments)]
pub fn block_tail_context(
    head: &[f32],
    rel: &[f32],
    core: &[f32],
    k: usize,
    ce: usize,
    cr: usize,
    dim: usize,
    ctx: &mut [f32],
) {
    debug_assert_eq!(head.len(), k * ce * dim);
    debug_assert_eq!(rel.len(), k * cr * dim);
    debug_assert_eq!(core.len(), k * ce * ce * cr);
    debug_assert_eq!(ctx.len(), k * ce * dim);
    for p in 0..k {
        for a in 0..ce {
            let i = p * ce + a;
            let h_a = &head[i * dim..(i + 1) * dim];
            for c in 0..ce {
                let j = p * ce + c;
                for b in 0..cr {
                    let w = core[core_index(ce, cr, p, a, c, b)];
                    if w == 0.0 {
                        continue;
                    }
                    let kk = p * cr + b;
                    let r_b = &rel[kk * dim..(kk + 1) * dim];
                    hadamard_axpy_fast(w, h_a, r_b, &mut ctx[j * dim..(j + 1) * dim]);
                }
            }
        }
    }
}

/// Head-side analogue of [`block_tail_context`]:
/// `ctx⁽ᵖ·ᶜᵉ⁺ᵃ⁾ += G_p[a,b,c] · t⁽ᵖ·ᶜᵉ⁺ᶜ⁾ ⊙ r⁽ᵖ·ᶜʳ⁺ᵇ⁾`.
#[allow(clippy::too_many_arguments)]
pub fn block_head_context(
    tail: &[f32],
    rel: &[f32],
    core: &[f32],
    k: usize,
    ce: usize,
    cr: usize,
    dim: usize,
    ctx: &mut [f32],
) {
    debug_assert_eq!(tail.len(), k * ce * dim);
    debug_assert_eq!(rel.len(), k * cr * dim);
    debug_assert_eq!(core.len(), k * ce * ce * cr);
    debug_assert_eq!(ctx.len(), k * ce * dim);
    for p in 0..k {
        for a in 0..ce {
            let i = p * ce + a;
            for c in 0..ce {
                let j = p * ce + c;
                let t_c = &tail[j * dim..(j + 1) * dim];
                for b in 0..cr {
                    let w = core[core_index(ce, cr, p, a, c, b)];
                    if w == 0.0 {
                        continue;
                    }
                    let kk = p * cr + b;
                    let r_b = &rel[kk * dim..(kk + 1) * dim];
                    hadamard_axpy_fast(w, t_c, r_b, &mut ctx[i * dim..(i + 1) * dim]);
                }
            }
        }
    }
}

/// Full block-term score `Σ_p Σ_{a,b,c} G_p[a,b,c]·⟨h, t, r⟩` — the
/// per-triple path, sharing the [`trilinear_fast`] reduction with the
/// generic ω walk (zero cells skipped in the same order).
#[allow(clippy::too_many_arguments)]
pub fn block_score(
    head: &[f32],
    tail: &[f32],
    rel: &[f32],
    core: &[f32],
    k: usize,
    ce: usize,
    cr: usize,
    dim: usize,
) -> f32 {
    debug_assert_eq!(core.len(), k * ce * ce * cr);
    let mut s = 0.0f32;
    for p in 0..k {
        for a in 0..ce {
            let i = p * ce + a;
            for c in 0..ce {
                let j = p * ce + c;
                for b in 0..cr {
                    let w = core[core_index(ce, cr, p, a, c, b)];
                    if w == 0.0 {
                        continue;
                    }
                    let kk = p * cr + b;
                    s += w * trilinear_fast(
                        &head[i * dim..(i + 1) * dim],
                        &tail[j * dim..(j + 1) * dim],
                        &rel[kk * dim..(kk + 1) * dim],
                    );
                }
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) - (n as f32) / 2.0) * scale).collect()
    }

    /// The block kernels must equal a generic term walk over the support
    /// cells, bit for bit: both sides call the same kernels in the same
    /// order on the same operands.
    #[test]
    fn block_context_matches_generic_support_walk_bitwise() {
        let (k, ce, cr, d) = (3, 2, 3, 7);
        let head = seq(k * ce * d, 0.13);
        let rel = seq(k * cr * d, -0.07);
        let mut core = seq(k * ce * ce * cr, 0.31);
        core[5] = 0.0; // exercise the zero-skip
        let mut fast = vec![0.0f32; k * ce * d];
        block_tail_context(&head, &rel, &core, k, ce, cr, d, &mut fast);
        let mut reference = vec![0.0f32; k * ce * d];
        for p in 0..k {
            for a in 0..ce {
                for c in 0..ce {
                    for b in 0..cr {
                        let w = core[core_index(ce, cr, p, a, c, b)];
                        if w == 0.0 {
                            continue;
                        }
                        let (i, j, kk) = (p * ce + a, p * ce + c, p * cr + b);
                        hadamard_axpy_fast(
                            w,
                            &head[i * d..(i + 1) * d],
                            &rel[kk * d..(kk + 1) * d],
                            &mut reference[j * d..(j + 1) * d],
                        );
                    }
                }
            }
        }
        for (x, y) in fast.iter().zip(&reference) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Score through the tail context equals the direct block score (up to
    /// the context path's different reduction grouping — compare loosely).
    #[test]
    fn score_agrees_with_context_dot() {
        let (k, ce, cr, d) = (2, 2, 1, 5);
        let head = seq(k * ce * d, 0.21);
        let tail = seq(k * ce * d, -0.17);
        let rel = seq(k * cr * d, 0.09);
        let core = seq(k * ce * ce * cr, 0.4);
        let direct = block_score(&head, &tail, &rel, &core, k, ce, cr, d);
        let mut ctx = vec![0.0f32; k * ce * d];
        block_tail_context(&head, &rel, &core, k, ce, cr, d, &mut ctx);
        let via_ctx: f32 = ctx.iter().zip(&tail).map(|(a, b)| a * b).sum();
        assert!((direct - via_ctx).abs() < 1e-4, "{direct} vs {via_ctx}");
    }

    /// Ragged shapes (Ce ≠ Cr) index cleanly.
    #[test]
    fn ragged_dims_are_supported() {
        let (k, ce, cr, d) = (2, 3, 1, 4);
        let head = seq(k * ce * d, 0.1);
        let rel = seq(k * cr * d, 0.2);
        let core = vec![1.0f32; k * ce * ce * cr];
        let mut ctx = vec![0.0f32; k * ce * d];
        block_tail_context(&head, &rel, &core, k, ce, cr, d, &mut ctx);
        assert!(ctx.iter().all(|v| v.is_finite()));
        let mut hctx = vec![0.0f32; k * ce * d];
        block_head_context(&head, &rel, &core, k, ce, cr, d, &mut hctx);
        assert!(hctx.iter().all(|v| v.is_finite()));
    }
}

//! Deterministic, seedable parameter initializers.
//!
//! Every random draw in the workspace flows from a caller-provided RNG so a
//! single `u64` seed reproduces an entire experiment bit-for-bit.

use rand::Rng;

/// Initialization scheme for an embedding or weight table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// Uniform on `[-bound, bound]`.
    Uniform {
        /// Half-width of the interval.
        bound: f32,
    },
    /// Xavier/Glorot uniform: `bound = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform {
        /// Incoming connections per unit.
        fan_in: usize,
        /// Outgoing connections per unit.
        fan_out: usize,
    },
    /// The TransE-style initializer: uniform on `[-6/√D, 6/√D]`.
    EmbeddingUniform {
        /// Embedding dimensionality `D`.
        dim: usize,
    },
    /// Every element set to a constant (used for weight-vector warm starts).
    Constant(f32),
}

impl Init {
    /// Fills `out` in place using draws from `rng`.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f32]) {
        match *self {
            Init::Uniform { bound } => {
                for v in out {
                    *v = rng.gen_range(-bound..=bound);
                }
            }
            Init::XavierUniform { fan_in, fan_out } => {
                let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
                for v in out {
                    *v = rng.gen_range(-bound..=bound);
                }
            }
            Init::EmbeddingUniform { dim } => {
                let bound = 6.0 / (dim.max(1) as f32).sqrt();
                for v in out {
                    *v = rng.gen_range(-bound..=bound);
                }
            }
            Init::Constant(c) => {
                for v in out {
                    *v = c;
                }
            }
        }
    }

    /// Allocates and fills a vector of length `n`.
    pub fn vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f32> {
        let mut v = vec![0.0; n];
        self.fill(rng, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = Init::Uniform { bound: 0.5 }.vec(&mut rng, 1000);
        assert!(v.iter().all(|x| x.abs() <= 0.5));
        // Not degenerate: spread over the interval.
        assert!(v.iter().any(|x| *x > 0.25));
        assert!(v.iter().any(|x| *x < -0.25));
    }

    #[test]
    fn xavier_bound_formula() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = Init::XavierUniform { fan_in: 100, fan_out: 200 }.vec(&mut rng, 500);
        let bound = (6.0f32 / 300.0).sqrt();
        assert!(v.iter().all(|x| x.abs() <= bound + 1e-7));
    }

    #[test]
    fn same_seed_same_draws() {
        let a = Init::EmbeddingUniform { dim: 64 }
            .vec(&mut StdRng::seed_from_u64(42), 128);
        let b = Init::EmbeddingUniform { dim: 64 }
            .vec(&mut StdRng::seed_from_u64(42), 128);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_fill() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = Init::Constant(1.25).vec(&mut rng, 5);
        assert_eq!(v, vec![1.25; 5]);
    }

    #[test]
    fn embedding_uniform_handles_dim_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = Init::EmbeddingUniform { dim: 0 }.vec(&mut rng, 3);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}

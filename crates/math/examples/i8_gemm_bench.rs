//! Kernel sizing probe at the million-entity serving shape: exact f32
//! `gemm_nt` vs flat i8 `gemm_i8_nt` vs the panel-packed VNNI path, with
//! the packed output asserted bit-identical to the flat one. The DESIGN.md
//! §13 kernel numbers come from this probe.
//!
//! Run: `cargo run --release -p mei-math --example i8_gemm_bench`

use std::time::Instant;

fn main() {
    let n = 1_000_000usize;
    let k = 256usize;
    for m in [1usize, 4, 8, 16] {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 255) as f32 / 255.0 - 0.5).collect();
        let b: Vec<f32> = (0..n * k).map(|i| ((i * 91) % 255) as f32 / 255.0 - 0.5).collect();
        let ai: Vec<i8> = (0..m * k).map(|i| ((i * 37) % 255) as i8).collect();
        let bi: Vec<i8> = (0..n * k).map(|i| ((i * 91) % 255) as i8).collect();
        let mut outf = vec![0f32; m * n];
        let mut outi = vec![0i32; m * n];

        mei_math::gemm_nt(&a, &b, k, &mut outf); // warm
        let t = Instant::now();
        mei_math::gemm_nt(&a, &b, k, &mut outf);
        let tf = t.elapsed().as_secs_f64();

        mei_math::gemm_i8_nt(&ai, &bi, k, &mut outi); // warm
        let t = Instant::now();
        mei_math::gemm_i8_nt(&ai, &bi, k, &mut outi);
        let ti = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let packed = mei_math::PackedI8::pack(&bi, k);
        let tpack = t.elapsed().as_secs_f64();
        let mut outp = vec![0i32; m * n];
        packed.gemm(&ai, 0, n, &mut outp); // warm
        let t = Instant::now();
        packed.gemm(&ai, 0, n, &mut outp);
        let tp = t.elapsed().as_secs_f64();
        assert_eq!(outp, outi, "packed diverged");

        println!(
            "m={m:>2}  f32 {:>8.1} ms ({:>6.1} GF/s)   i8 {:>8.1} ms ({:>6.1} Gop/s)   pk {:>8.1} ms ({:>6.1} Gop/s, pack {:.0} ms)   ratio {:.2}x",
            tf * 1e3,
            (2.0 * m as f64 * n as f64 * k as f64) / tf / 1e9,
            ti * 1e3,
            (2.0 * m as f64 * n as f64 * k as f64) / ti / 1e9,
            tp * 1e3,
            (2.0 * m as f64 * n as f64 * k as f64) / tp / 1e9,
            tpack * 1e3,
            tf / tp
        );
        std::hint::black_box((&outf, &outi, &outp));
    }
}

//! Microbenchmarks of the evaluation kernels: the classic f64-accumulating
//! vecops against the unrolled multi-accumulator variants, and the
//! cache-blocked GEMM against per-row dots at WN18-like shape
//! (n·D = 400, tens of thousands of entity rows).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mei_math::kernels::{dot_fast, gemm_nt, hadamard_axpy_fast, trilinear_fast};
use mei_math::vecops::{dot, hadamard_axpy, trilinear};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const K: usize = 400;

fn random_vec(rng: &mut StdRng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bench_vecops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let a = random_vec(&mut rng, K);
    let b = random_vec(&mut rng, K);
    let cc = random_vec(&mut rng, K);

    let mut group = c.benchmark_group("vecops_400");
    group.bench_function("dot (f64 scalar)", |ben| ben.iter(|| dot(black_box(&a), black_box(&b))));
    group.bench_function("dot_fast (8-lane)", |ben| {
        ben.iter(|| dot_fast(black_box(&a), black_box(&b)))
    });
    group.bench_function("trilinear (f64 scalar)", |ben| {
        ben.iter(|| trilinear(black_box(&a), black_box(&b), black_box(&cc)))
    });
    group.bench_function("trilinear_fast (8-lane)", |ben| {
        ben.iter(|| trilinear_fast(black_box(&a), black_box(&b), black_box(&cc)))
    });
    let mut out = vec![0.0f32; K];
    group.bench_function("hadamard_axpy", |ben| {
        ben.iter(|| {
            hadamard_axpy(0.5, black_box(&a), black_box(&b), &mut out);
            out[0]
        })
    });
    group.bench_function("hadamard_axpy_fast", |ben| {
        ben.iter(|| {
            hadamard_axpy_fast(0.5, black_box(&a), black_box(&b), &mut out);
            out[0]
        })
    });
    group.finish();
}

fn bench_gemm(c: &mut Criterion) {
    // 32 query contexts against an 8192-row slice of an entity table:
    // big enough that blocking matters, small enough to iterate quickly.
    let (m, n) = (32usize, 8192usize);
    let mut rng = StdRng::seed_from_u64(11);
    let a = random_vec(&mut rng, m * K);
    let b = random_vec(&mut rng, n * K);
    let mut out = vec![0.0f32; m * n];

    let mut group = c.benchmark_group("gemm_32x8192x400");
    group.sample_size(10);
    group.bench_function("gemm_nt (blocked)", |ben| {
        ben.iter(|| {
            gemm_nt(black_box(&a), black_box(&b), K, &mut out);
            out[0]
        })
    });
    group.bench_function("per-query dot_fast rows", |ben| {
        // The unblocked layout: each query streams the whole table.
        ben.iter(|| {
            for i in 0..m {
                let arow = &a[i * K..(i + 1) * K];
                for j in 0..n {
                    out[i * n + j] = dot_fast(black_box(arow), &b[j * K..(j + 1) * K]);
                }
            }
            out[0]
        })
    });
    group.bench_function("per-query f64 dot rows (legacy)", |ben| {
        ben.iter(|| {
            for i in 0..m {
                let arow = &a[i * K..(i + 1) * K];
                for j in 0..n {
                    out[i * n + j] = dot(black_box(arow), &b[j * K..(j + 1) * K]);
                }
            }
            out[0]
        })
    });
    group.finish();
}

criterion_group!(benches, bench_vecops, bench_gemm);
criterion_main!(benches);

//! Symbolic expansion of hyper-complex trilinear scores into interaction
//! weight vectors.
//!
//! The paper derives ComplEx (Eq. 9–10) and the quaternion model (Eq. 14)
//! by expanding `Re(h · t̄ · r)` over the components of each number and
//! reading off signed trilinear terms `±⟨h(i), t(j), r(k)⟩`. This module
//! performs that expansion *mechanically* from the algebra's basis
//! multiplication table, so Table 1's ComplEx column and Eq. 14's sixteen
//! terms are derived by the code rather than hard-coded — the presets in
//! `mei-core` are then tested against these derivations.

/// One signed trilinear term `sign · ⟨h(i), t(j), r(k)⟩` in an expansion.
///
/// Component indices are zero-based: for complex numbers `0 = Re, 1 = Im`;
/// for quaternions `0 = real, 1..=3` the `i, j, k` coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SignedTerm {
    /// Head component index `i`.
    pub h: usize,
    /// Tail component index `j`.
    pub t: usize,
    /// Relation component index `k`.
    pub r: usize,
    /// Coefficient, `+1` or `−1`.
    pub sign: i8,
}

/// A hyper-complex algebra described by its basis multiplication table.
///
/// `mul(a, b)` returns `(sign, c)` such that `e_a · e_b = sign · e_c`.
/// Basis element 0 is the real unit; conjugation negates every non-real
/// component.
pub trait BasisAlgebra {
    /// Number of basis elements (2 for ℂ, 4 for ℍ).
    fn dim(&self) -> usize;
    /// Product of basis units: `e_a · e_b = sign · e_c`.
    fn mul(&self, a: usize, b: usize) -> (i8, usize);
}

/// The complex numbers `{1, i}`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ComplexBasis;

impl BasisAlgebra for ComplexBasis {
    fn dim(&self) -> usize {
        2
    }

    fn mul(&self, a: usize, b: usize) -> (i8, usize) {
        match (a, b) {
            (0, x) => (1, x),
            (x, 0) => (1, x),
            (1, 1) => (-1, 0),
            _ => panic!("complex basis index out of range: ({a}, {b})"),
        }
    }
}

/// The quaternions `{1, i, j, k}` with Hamilton's table.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuaternionBasis;

impl BasisAlgebra for QuaternionBasis {
    fn dim(&self) -> usize {
        4
    }

    fn mul(&self, a: usize, b: usize) -> (i8, usize) {
        // Table rows are e_a · e_b for a, b ∈ {1, i, j, k}.
        const TABLE: [[(i8, usize); 4]; 4] = [
            [(1, 0), (1, 1), (1, 2), (1, 3)],
            [(1, 1), (-1, 0), (1, 3), (-1, 2)],
            [(1, 2), (-1, 3), (-1, 0), (1, 1)],
            [(1, 3), (1, 2), (-1, 1), (-1, 0)],
        ];
        TABLE[a][b]
    }
}

/// The octonions `{1, e₁ … e₇}` with the Fano-plane table — powering the
/// eight-embedding extension model (the paper's §7 future-work direction).
#[derive(Debug, Clone, Copy, Default)]
pub struct OctonionBasis;

impl BasisAlgebra for OctonionBasis {
    fn dim(&self) -> usize {
        8
    }

    fn mul(&self, a: usize, b: usize) -> (i8, usize) {
        crate::octonion::basis_mul(a, b)
    }
}

/// Expands `Re((h · conj(t)) · r)` over algebra `alg` into signed trilinear
/// terms, sorted by `(h, t, r)` component indices.
///
/// The association order is left-to-right, which matters only for
/// nonassociative algebras (octonions); for ℂ and ℍ any order gives the
/// same real part.
///
/// Every returned term has a nonzero coefficient; components never repeat,
/// so the result is exactly the nonzero entries of the interaction weight
/// vector ω of Eq. 8 realized by the algebra.
pub fn expand_re_h_conj_t_r<A: BasisAlgebra>(alg: &A) -> Vec<SignedTerm> {
    let n = alg.dim();
    let mut terms = Vec::new();
    for i in 0..n {
        for j in 0..n {
            // Conjugation flips the sign of non-real components of t.
            let conj_sign: i8 = if j == 0 { 1 } else { -1 };
            let (s1, u) = alg.mul(i, j);
            for k in 0..n {
                let (s2, v) = alg.mul(u, k);
                if v == 0 {
                    // Only basis products landing on the real unit
                    // contribute to Re(·).
                    terms.push(SignedTerm { h: i, t: j, r: k, sign: conj_sign * s1 * s2 });
                }
            }
        }
    }
    terms.sort();
    terms
}

/// The ComplEx weight vector over the `n = 2` multi-embedding grid,
/// flattened in `(i, j, k)` row-major order — the paper's Table 1 column
/// "ComplEx": `(1, 0, 0, 1, 0, −1, 1, 0)`.
pub fn complex_omega() -> Vec<f32> {
    omega_from_terms(&expand_re_h_conj_t_r(&ComplexBasis), 2)
}

/// The quaternion weight vector over the `n = 4` grid (64 entries, 16
/// nonzero), flattened in `(i, j, k)` row-major order — Eq. 14.
pub fn quaternion_omega() -> Vec<f32> {
    omega_from_terms(&expand_re_h_conj_t_r(&QuaternionBasis), 4)
}

/// The octonion weight vector over the `n = 8` grid (512 entries, 64
/// nonzero) for the eight-embedding extension model.
pub fn octonion_omega() -> Vec<f32> {
    omega_from_terms(&expand_re_h_conj_t_r(&OctonionBasis), 8)
}

/// Scatters signed terms into a dense row-major `n³` weight vector.
pub fn omega_from_terms(terms: &[SignedTerm], n: usize) -> Vec<f32> {
    let mut omega = vec![0.0f32; n * n * n];
    for t in terms {
        omega[(t.h * n + t.t) * n + t.r] += f32::from(t.sign);
    }
    omega
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Complex, Quaternion};

    #[test]
    fn complex_expansion_matches_eq_10() {
        // Eq. 10: S = ⟨h1,t1,r1⟩ + ⟨h1,t2,r2⟩ − ⟨h2,t1,r2⟩ + ⟨h2,t2,r1⟩.
        let terms = expand_re_h_conj_t_r(&ComplexBasis);
        assert_eq!(
            terms,
            vec![
                SignedTerm { h: 0, t: 0, r: 0, sign: 1 },
                SignedTerm { h: 0, t: 1, r: 1, sign: 1 },
                SignedTerm { h: 1, t: 0, r: 1, sign: -1 },
                SignedTerm { h: 1, t: 1, r: 0, sign: 1 },
            ]
        );
    }

    #[test]
    fn complex_omega_matches_table_1() {
        // Table 1 ComplEx column in row-major (h, t, r) order.
        assert_eq!(complex_omega(), vec![1.0, 0.0, 0.0, 1.0, 0.0, -1.0, 1.0, 0.0]);
    }

    #[test]
    fn quaternion_expansion_has_16_terms_matching_eq_14() {
        let terms = expand_re_h_conj_t_r(&QuaternionBasis);
        assert_eq!(terms.len(), 16);
        // Eq. 14 (1-based in the paper, 0-based here). Rows grouped by r.
        let expected: &[(usize, usize, usize, i8)] = &[
            (0, 0, 0, 1),
            (1, 1, 0, 1),
            (2, 2, 0, 1),
            (3, 3, 0, 1),
            (0, 1, 1, 1),
            (1, 0, 1, -1),
            (2, 3, 1, 1),
            (3, 2, 1, -1),
            (0, 2, 2, 1),
            (1, 3, 2, -1),
            (2, 0, 2, -1),
            (3, 1, 2, 1),
            (0, 3, 3, 1),
            (1, 2, 3, 1),
            (2, 1, 3, -1),
            (3, 0, 3, -1),
        ];
        for &(h, t, r, sign) in expected {
            assert!(
                terms.contains(&SignedTerm { h, t, r, sign }),
                "missing term ±⟨h{h},t{t},r{r}⟩ sign {sign}"
            );
        }
    }

    #[test]
    fn complex_expansion_agrees_with_numeric_algebra() {
        // Re(h·t̄·r) computed natively must equal the symbolic expansion
        // evaluated on the components.
        let h = Complex::new(0.3, -1.1);
        let t = Complex::new(0.9, 0.4);
        let r = Complex::new(-0.5, 0.7);
        let native = (h * t.conj() * r).re;
        let hc = [h.re, h.im];
        let tc = [t.re, t.im];
        let rc = [r.re, r.im];
        let expanded: f32 = expand_re_h_conj_t_r(&ComplexBasis)
            .iter()
            .map(|s| f32::from(s.sign) * hc[s.h] * tc[s.t] * rc[s.r])
            .sum();
        assert!((native - expanded).abs() < 1e-6);
    }

    #[test]
    fn quaternion_expansion_agrees_with_numeric_algebra() {
        let h = Quaternion::new(0.3, -1.1, 0.2, 0.8);
        let t = Quaternion::new(0.9, 0.4, -0.6, 0.1);
        let r = Quaternion::new(-0.5, 0.7, 1.2, -0.3);
        let native = (h * t.conj() * r).re();
        let hc = [h.w, h.x, h.y, h.z];
        let tc = [t.w, t.x, t.y, t.z];
        let rc = [r.w, r.x, r.y, r.z];
        let expanded: f32 = expand_re_h_conj_t_r(&QuaternionBasis)
            .iter()
            .map(|s| f32::from(s.sign) * hc[s.h] * tc[s.t] * rc[s.r])
            .sum();
        assert!((native - expanded).abs() < 1e-5);
    }

    #[test]
    fn quaternion_basis_table_is_consistent_with_mul() {
        let units = [Quaternion::ONE, Quaternion::I, Quaternion::J, Quaternion::K];
        let basis = QuaternionBasis;
        for a in 0..4 {
            for b in 0..4 {
                let (sign, c) = basis.mul(a, b);
                let expect = units[c].scale(f32::from(sign));
                assert_eq!(units[a] * units[b], expect, "e{a}·e{b}");
            }
        }
    }

    #[test]
    fn omega_from_terms_scatter() {
        let terms = [SignedTerm { h: 1, t: 0, r: 1, sign: -1 }];
        let omega = omega_from_terms(&terms, 2);
        // flat index of (h=1, t=0, r=1) on the n=2 grid is 5
        assert_eq!(omega[5], -1.0);
        assert_eq!(omega.iter().filter(|v| **v != 0.0).count(), 1);
    }
}

//! Packed hyper-complex embedding kernels.
//!
//! Embedding tables in `mei-core` store the `n` component vectors of each
//! item contiguously (structure-of-arrays). These kernels score a triple
//! directly in the hyper-complex algebra — `Σ_d Re(h_d · t̄_d · r_d)` — and
//! serve as the independent "native" implementations that the unified
//! multi-embedding presets are equivalence-tested against.

use crate::{Complex, Quaternion};

/// ComplEx score `Σ_d Re(h_d · t̄_d · r_d)` (Eq. 5).
///
/// Each argument is the pair `[real, imaginary]` of component slices; all
/// six slices must share one length `D`.
pub fn complex_score(h: [&[f32]; 2], t: [&[f32]; 2], r: [&[f32]; 2]) -> f32 {
    let d = h[0].len();
    debug_assert!(
        h[1].len() == d && t[0].len() == d && t[1].len() == d && r[0].len() == d && r[1].len() == d
    );
    let mut acc = 0.0f64;
    for idx in 0..d {
        let hq = Complex::new(h[0][idx], h[1][idx]);
        let tq = Complex::new(t[0][idx], t[1][idx]);
        let rq = Complex::new(r[0][idx], r[1][idx]);
        acc += f64::from((hq * tq.conj() * rq).re);
    }
    acc as f32
}

/// Quaternion score `Σ_d Re(h_d · t̄_d · r_d)` (Eq. 13) under the Hamilton
/// product, with the operand order whose expansion is Eq. 14.
///
/// Each argument is the quadruple `[w, x, y, z]` of component slices.
pub fn quaternion_score(h: [&[f32]; 4], t: [&[f32]; 4], r: [&[f32]; 4]) -> f32 {
    let d = h[0].len();
    let mut acc = 0.0f64;
    for idx in 0..d {
        let hq = Quaternion::new(h[0][idx], h[1][idx], h[2][idx], h[3][idx]);
        let tq = Quaternion::new(t[0][idx], t[1][idx], t[2][idx], t[3][idx]);
        let rq = Quaternion::new(r[0][idx], r[1][idx], r[2][idx], r[3][idx]);
        acc += f64::from((hq * tq.conj() * rq).re());
    }
    acc as f32
}

/// Octonion score `Σ_d Re((h_d · t̄_d) · r_d)` for the eight-embedding
/// extension model (association order fixed left-to-right; octonions are
/// nonassociative).
///
/// Each argument is the 8 component slices `[e0..e7]`.
pub fn octonion_score(h: [&[f32]; 8], t: [&[f32]; 8], r: [&[f32]; 8]) -> f32 {
    use crate::Octonion;
    let d = h[0].len();
    let mut acc = 0.0f64;
    for idx in 0..d {
        let gather = |s: &[&[f32]; 8]| {
            let mut c = [0.0f32; 8];
            for (ci, comp) in c.iter_mut().zip(s.iter()) {
                *ci = comp[idx];
            }
            Octonion(c)
        };
        let hq = gather(&h);
        let tq = gather(&t);
        let rq = gather(&r);
        acc += f64::from(((hq * tq.conj()) * rq).re());
    }
    acc as f32
}

/// DistMult / CP score `⟨a, b, c⟩ = Σ_d a_d·b_d·c_d` over plain real
/// vectors (Eq. 3) — re-exported here so all three "native" scoring
/// functions live side by side.
pub fn real_trilinear_score(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    mei_math::trilinear(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn complex_score_single_dim_matches_scalar_algebra() {
        let h = Complex::new(0.4, -0.9);
        let t = Complex::new(1.2, 0.3);
        let r = Complex::new(-0.6, 0.8);
        let s = complex_score(
            [&[h.re], &[h.im]],
            [&[t.re], &[t.im]],
            [&[r.re], &[r.im]],
        );
        assert!((s - (h * t.conj() * r).re).abs() < 1e-6);
    }

    #[test]
    fn complex_score_is_asymmetric() {
        // Swapping head and tail must be able to change the score — the
        // property DistMult lacks and ComplEx was built for (§2.2.3).
        let h = [&[1.0f32][..], &[0.5f32][..]];
        let t = [&[0.2f32][..], &[-0.8f32][..]];
        let r = [&[0.7f32][..], &[0.9f32][..]];
        let fwd = complex_score(h, t, r);
        let bwd = complex_score(t, h, r);
        assert!((fwd - bwd).abs() > 1e-6);
    }

    #[test]
    fn complex_score_symmetric_when_relation_is_real() {
        // With Im(r) = 0 the score reduces to DistMult on stacked
        // components, which is symmetric in h and t.
        let h = [&[0.3f32, 1.0][..], &[0.5f32, -0.2][..]];
        let t = [&[-0.4f32, 0.8][..], &[0.1f32, 0.6][..]];
        let r = [&[0.7f32, -0.9][..], &[0.0f32, 0.0][..]];
        let fwd = complex_score(h, t, r);
        let bwd = complex_score(t, h, r);
        assert!((fwd - bwd).abs() < 1e-6);
    }

    #[test]
    fn octonion_score_single_dim_matches_scalar_algebra() {
        use crate::expansion::{expand_re_h_conj_t_r, OctonionBasis};
        let hv = [0.4f32, -0.9, 0.3, 0.1, 0.7, -0.2, 0.5, -0.6];
        let tv = [1.2f32, 0.3, -0.5, 0.6, -0.1, 0.8, 0.2, 0.4];
        let rv = [-0.6f32, 0.8, 0.2, -0.4, 0.9, 0.1, -0.7, 0.3];
        fn cols(v: &[f32; 8]) -> [&[f32]; 8] {
            [
                std::slice::from_ref(&v[0]),
                std::slice::from_ref(&v[1]),
                std::slice::from_ref(&v[2]),
                std::slice::from_ref(&v[3]),
                std::slice::from_ref(&v[4]),
                std::slice::from_ref(&v[5]),
                std::slice::from_ref(&v[6]),
                std::slice::from_ref(&v[7]),
            ]
        }
        let s = octonion_score(cols(&hv), cols(&tv), cols(&rv));
        // Against the scalar algebra ...
        let native = ((crate::Octonion(hv) * crate::Octonion(tv).conj()) * crate::Octonion(rv)).re();
        assert!((s - native).abs() < 1e-5);
        // ... and against the symbolic 64-term expansion.
        let expanded: f32 = expand_re_h_conj_t_r(&OctonionBasis)
            .iter()
            .map(|t| f32::from(t.sign) * hv[t.h] * tv[t.t] * rv[t.r])
            .sum();
        assert!((s - expanded).abs() < 1e-5);
    }

    #[test]
    fn quaternion_score_single_dim_matches_scalar_algebra() {
        let h = Quaternion::new(0.4, -0.9, 0.3, 0.1);
        let t = Quaternion::new(1.2, 0.3, -0.5, 0.6);
        let r = Quaternion::new(-0.6, 0.8, 0.2, -0.4);
        let s = quaternion_score(
            [&[h.w], &[h.x], &[h.y], &[h.z]],
            [&[t.w], &[t.x], &[t.y], &[t.z]],
            [&[r.w], &[r.x], &[r.y], &[r.z]],
        );
        assert!((s - (h * t.conj() * r).re()).abs() < 1e-5);
    }

    proptest! {
        #[test]
        fn complex_score_sums_over_dimensions(
            hs in proptest::collection::vec(proptest::array::uniform6(-2.0f32..2.0), 1..8)
        ) {
            // Score of a D-dim triple equals the sum of D scalar scores.
            let d = hs.len();
            let mut cols: [Vec<f32>; 6] = Default::default();
            for row in &hs {
                for (c, v) in cols.iter_mut().zip(row) {
                    c.push(*v);
                }
            }
            let whole = complex_score(
                [&cols[0], &cols[1]],
                [&cols[2], &cols[3]],
                [&cols[4], &cols[5]],
            );
            let mut per_dim = 0.0f32;
            for i in 0..d {
                per_dim += complex_score(
                    [&cols[0][i..=i], &cols[1][i..=i]],
                    [&cols[2][i..=i], &cols[3][i..=i]],
                    [&cols[4][i..=i], &cols[5][i..=i]],
                );
            }
            prop_assert!((whole - per_dim).abs() < 1e-3);
        }
    }
}

//! Scalar complex numbers.
//!
//! Used by the ComplEx model (Trouillon et al., 2016) as derived in §2.2.3 /
//! Eq. 5 of the paper: each entity and relation embedding entry is a complex
//! number `c = a + b·i`, and the score conjugates the tail.

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number `re + im·i` over `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real component `Re(c)`.
    pub re: f32,
    /// Imaginary component `Im(c)`.
    pub im: f32,
}

impl Complex {
    /// Constructs `re + im·i`.
    #[inline]
    pub fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Complex conjugate `c̄ = re − im·i`.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Modulus `|c| = sqrt(re² + im²)`.
    #[inline]
    pub fn norm(self) -> f32 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|c|²` (no square root).
    #[inline]
    pub fn norm_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Constructs a complex number from polar coordinates `|c|·e^{iθ}`.
    ///
    /// §6.1.2 of the paper explains ComplEx's good weight vector through
    /// this form: multiplying complex numbers adds phases, i.e. rotates in
    /// the plane, which yields the completeness/stability/distinguishability
    /// properties.
    #[inline]
    pub fn from_polar(modulus: f32, theta: f32) -> Self {
        Self { re: modulus * theta.cos(), im: modulus * theta.sin() }
    }

    /// Multiplicative inverse `1/c`.
    ///
    /// Returns `None` for (near-)zero inputs.
    pub fn inverse(self) -> Option<Self> {
        let n = self.norm_sq();
        if n < 1e-30 {
            None
        } else {
            Some(Self { re: self.re / n, im: -self.im / n })
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f32) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-4 * (1.0 + a.abs().max(b.abs()))
    }

    fn close_c(a: Complex, b: Complex) -> bool {
        close(a.re, b.re) && close(a.im, b.im)
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
    }

    #[test]
    fn conjugate_of_product_reference() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        assert!(close_c((a * b).conj(), a.conj() * b.conj()));
    }

    #[test]
    fn inverse_round_trip() {
        let a = Complex::new(0.7, -1.3);
        let inv = a.inverse().unwrap();
        assert!(close_c(a * inv, Complex::ONE));
        assert!(Complex::ZERO.inverse().is_none());
    }

    #[test]
    fn polar_round_trip() {
        let c = Complex::new(-1.2, 0.8);
        let p = Complex::from_polar(c.norm(), c.arg());
        assert!(close_c(c, p));
    }

    proptest! {
        #[test]
        fn multiplication_is_commutative(
            (a, b, c, d) in (-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0)
        ) {
            let x = Complex::new(a, b);
            let y = Complex::new(c, d);
            prop_assert!(close_c(x * y, y * x));
        }

        #[test]
        fn multiplication_is_associative(
            v in proptest::array::uniform6(-4.0f32..4.0)
        ) {
            let x = Complex::new(v[0], v[1]);
            let y = Complex::new(v[2], v[3]);
            let z = Complex::new(v[4], v[5]);
            prop_assert!(close_c((x * y) * z, x * (y * z)));
        }

        #[test]
        fn norm_is_multiplicative(
            (a, b, c, d) in (-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0)
        ) {
            let x = Complex::new(a, b);
            let y = Complex::new(c, d);
            prop_assert!(close((x * y).norm(), x.norm() * y.norm()));
        }

        #[test]
        fn multiplication_adds_phases(
            (m1, t1, m2, t2) in (0.1f32..5.0, -1.5f32..1.5, 0.1f32..5.0, -1.5f32..1.5)
        ) {
            // |c1|e^{iθ1} · |c2|e^{iθ2} = |c1||c2| e^{i(θ1+θ2)} — the rotation
            // picture of §6.1.2 (angles chosen so the sum stays in (-π, π]).
            let c1 = Complex::from_polar(m1, t1);
            let c2 = Complex::from_polar(m2, t2);
            let p = c1 * c2;
            prop_assert!(close(p.norm(), m1 * m2));
            prop_assert!(close(p.arg(), t1 + t2));
        }

        #[test]
        fn conj_is_involution((a, b) in (-10.0f32..10.0, -10.0f32..10.0)) {
            let x = Complex::new(a, b);
            prop_assert_eq!(x.conj().conj(), x);
        }

        #[test]
        fn distributes_over_addition(
            v in proptest::array::uniform6(-4.0f32..4.0)
        ) {
            let x = Complex::new(v[0], v[1]);
            let y = Complex::new(v[2], v[3]);
            let z = Complex::new(v[4], v[5]);
            prop_assert!(close_c(x * (y + z), x * y + x * z));
        }
    }
}

//! Scalar quaternion numbers (Hamilton's ℍ).
//!
//! §3.4 of the paper proposes the quaternion-based four-embedding model:
//! each embedding entry is `q = a + b·i + c·j + d·k`, and the score is
//! `Re(h · t̄ · r)` with the (noncommutative) Hamilton product. The identity
//! `i² = j² = k² = ijk = −1` generates the full multiplication table.

use std::ops::{Add, Mul, Neg, Sub};

/// A quaternion `w + x·i + y·j + z·k` over `f32`.
///
/// The component names follow the common (w, x, y, z) convention; the paper
/// writes them `a + b·i + c·j + d·k`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Quaternion {
    /// Real (scalar) component `a`.
    pub w: f32,
    /// First imaginary component `b` (coefficient of `i`).
    pub x: f32,
    /// Second imaginary component `c` (coefficient of `j`).
    pub y: f32,
    /// Third imaginary component `d` (coefficient of `k`).
    pub z: f32,
}

impl Quaternion {
    /// Constructs `w + x·i + y·j + z·k`.
    #[inline]
    pub fn new(w: f32, x: f32, y: f32, z: f32) -> Self {
        Self { w, x, y, z }
    }

    /// Additive identity.
    pub const ZERO: Quaternion = Quaternion { w: 0.0, x: 0.0, y: 0.0, z: 0.0 };

    /// Multiplicative identity.
    pub const ONE: Quaternion = Quaternion { w: 1.0, x: 0.0, y: 0.0, z: 0.0 };

    /// The `i` unit.
    pub const I: Quaternion = Quaternion { w: 0.0, x: 1.0, y: 0.0, z: 0.0 };

    /// The `j` unit.
    pub const J: Quaternion = Quaternion { w: 0.0, x: 0.0, y: 1.0, z: 0.0 };

    /// The `k` unit.
    pub const K: Quaternion = Quaternion { w: 0.0, x: 0.0, y: 0.0, z: 1.0 };

    /// Quaternion conjugate `q̄ = w − x·i − y·j − z·k`.
    #[inline]
    pub fn conj(self) -> Self {
        Self { w: self.w, x: -self.x, y: -self.y, z: -self.z }
    }

    /// Euclidean norm `|q|`.
    #[inline]
    pub fn norm(self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Squared norm `|q|² = q·q̄`.
    #[inline]
    pub fn norm_sq(self) -> f32 {
        self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Real part `Re(q) = w`.
    #[inline]
    pub fn re(self) -> f32 {
        self.w
    }

    /// Multiplicative inverse `q̄ / |q|²`; `None` for (near-)zero inputs.
    pub fn inverse(self) -> Option<Self> {
        let n = self.norm_sq();
        if n < 1e-30 {
            None
        } else {
            let c = self.conj();
            Some(Self { w: c.w / n, x: c.x / n, y: c.y / n, z: c.z / n })
        }
    }

    /// Scales all components by a real factor.
    #[inline]
    pub fn scale(self, s: f32) -> Self {
        Self { w: self.w * s, x: self.x * s, y: self.y * s, z: self.z * s }
    }

    /// Normalizes to unit norm; `None` for (near-)zero inputs.
    pub fn normalized(self) -> Option<Self> {
        let n = self.norm();
        if n < 1e-15 {
            None
        } else {
            Some(self.scale(1.0 / n))
        }
    }

    /// Rotates a 3-vector `v` by this (unit) quaternion: `q·v·q⁻¹`.
    ///
    /// This is the geometric reading the paper gives for quaternion
    /// multiplication: rotation in 3-/4-dimensional space (§3.4).
    pub fn rotate_vector(self, v: [f32; 3]) -> [f32; 3] {
        let qv = Quaternion::new(0.0, v[0], v[1], v[2]);
        let inv = self.inverse().unwrap_or(Quaternion::ONE);
        let r = self * qv * inv;
        [r.x, r.y, r.z]
    }
}

impl Add for Quaternion {
    type Output = Quaternion;
    #[inline]
    fn add(self, o: Quaternion) -> Quaternion {
        Quaternion::new(self.w + o.w, self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Quaternion {
    type Output = Quaternion;
    #[inline]
    fn sub(self, o: Quaternion) -> Quaternion {
        Quaternion::new(self.w - o.w, self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Neg for Quaternion {
    type Output = Quaternion;
    #[inline]
    fn neg(self) -> Quaternion {
        Quaternion::new(-self.w, -self.x, -self.y, -self.z)
    }
}

impl Mul for Quaternion {
    type Output = Quaternion;
    /// Hamilton product (noncommutative).
    #[inline]
    fn mul(self, o: Quaternion) -> Quaternion {
        Quaternion::new(
            self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() <= 2e-4 * (1.0 + a.abs().max(b.abs()))
    }

    fn close_q(a: Quaternion, b: Quaternion) -> bool {
        close(a.w, b.w) && close(a.x, b.x) && close(a.y, b.y) && close(a.z, b.z)
    }

    fn arb_q() -> impl Strategy<Value = Quaternion> {
        proptest::array::uniform4(-5.0f32..5.0).prop_map(|v| Quaternion::new(v[0], v[1], v[2], v[3]))
    }

    #[test]
    fn fundamental_identities() {
        use Quaternion as Q;
        assert_eq!(Q::I * Q::I, -Q::ONE);
        assert_eq!(Q::J * Q::J, -Q::ONE);
        assert_eq!(Q::K * Q::K, -Q::ONE);
        assert_eq!(Q::I * Q::J * Q::K, -Q::ONE);
        // Cyclic products.
        assert_eq!(Q::I * Q::J, Q::K);
        assert_eq!(Q::J * Q::K, Q::I);
        assert_eq!(Q::K * Q::I, Q::J);
        // Anticommutativity of distinct units.
        assert_eq!(Q::J * Q::I, -Q::K);
        assert_eq!(Q::K * Q::J, -Q::I);
        assert_eq!(Q::I * Q::K, -Q::J);
    }

    #[test]
    fn multiplication_is_noncommutative() {
        let a = Quaternion::new(1.0, 2.0, 3.0, 4.0);
        let b = Quaternion::new(0.5, -1.0, 2.0, 1.5);
        assert_ne!(a * b, b * a);
    }

    #[test]
    fn norm_sq_is_q_times_conj() {
        let q = Quaternion::new(1.0, -2.0, 0.5, 3.0);
        let p = q * q.conj();
        assert!(close(p.w, q.norm_sq()));
        assert!(close(p.x, 0.0) && close(p.y, 0.0) && close(p.z, 0.0));
    }

    #[test]
    fn unit_quaternion_rotates_vectors() {
        // Rotation by π/2 around the z axis maps x̂ to ŷ.
        let half = std::f32::consts::FRAC_PI_4;
        let q = Quaternion::new(half.cos(), 0.0, 0.0, half.sin());
        let v = q.rotate_vector([1.0, 0.0, 0.0]);
        assert!(close(v[0], 0.0) && close(v[1], 1.0) && close(v[2], 0.0));
    }

    #[test]
    fn inverse_round_trip() {
        let q = Quaternion::new(0.3, -0.7, 1.1, 0.2);
        let inv = q.inverse().unwrap();
        assert!(close_q(q * inv, Quaternion::ONE));
        assert!(close_q(inv * q, Quaternion::ONE));
        assert!(Quaternion::ZERO.inverse().is_none());
    }

    proptest! {
        #[test]
        fn multiplication_is_associative((a, b, c) in (arb_q(), arb_q(), arb_q())) {
            prop_assert!(close_q((a * b) * c, a * (b * c)));
        }

        #[test]
        fn norm_is_multiplicative((a, b) in (arb_q(), arb_q())) {
            prop_assert!(close((a * b).norm(), a.norm() * b.norm()));
        }

        #[test]
        fn conjugation_is_anti_automorphism((a, b) in (arb_q(), arb_q())) {
            // (ab)̄ = b̄ ā — note the reversal, unlike the complex case.
            prop_assert!(close_q((a * b).conj(), b.conj() * a.conj()));
        }

        #[test]
        fn re_of_product_is_cyclic((a, b, c) in (arb_q(), arb_q(), arb_q())) {
            // Re(abc) = Re(bca) = Re(cab): the trace property that makes the
            // paper's "choice" of multiplication order only matter up to
            // cyclic permutation.
            let abc = (a * b * c).re();
            prop_assert!(close(abc, (b * c * a).re()));
            prop_assert!(close(abc, (c * a * b).re()));
        }

        #[test]
        fn distributes_over_addition((a, b, c) in (arb_q(), arb_q(), arb_q())) {
            prop_assert!(close_q(a * (b + c), a * b + a * c));
            prop_assert!(close_q((b + c) * a, b * a + c * a));
        }

        #[test]
        fn conj_is_involution(a in arb_q()) {
            prop_assert_eq!(a.conj().conj(), a);
        }

        #[test]
        fn normalized_has_unit_norm(a in arb_q()) {
            prop_assume!(a.norm() > 1e-3);
            prop_assert!(close(a.normalized().unwrap().norm(), 1.0));
        }
    }
}

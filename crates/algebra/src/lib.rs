//! Complex and quaternion algebra for multi-embedding interaction models.
//!
//! The paper's central observation is that ComplEx's score
//! `Re⟨h, t̄, r⟩` over `ℂ^D` and the quaternion four-embedding score
//! `Re⟨h, t̄, r⟩` over `ℍ^D` are *weighted sums of real trilinear products*
//! once each hyper-complex number is split into its components (Eqs. 9–10
//! and 14). This crate provides:
//!
//! * scalar [`complex::Complex`] and [`quaternion::Quaternion`] types with
//!   the full algebra (Hamilton product, conjugation, norms, polar form);
//! * packed *embedding* kernels ([`embedding`]) that score `(h, t, r)`
//!   triples natively in the hyper-complex algebra;
//! * a tiny symbolic engine ([`expansion`]) that expands
//!   `Re(h · t̄ · r)` over an arbitrary hyper-complex basis table and emits
//!   the interaction weight vector ω — the machine-checked derivation of
//!   Table 1 and Eq. 14.
//!
//! # Example
//!
//! The symbolic expansion derives the paper's weight vectors rather than
//! hard-coding them — ComplEx's ω has 4 signed terms on the `n = 2` grid
//! (Eq. 10), the quaternion model 16 on the `n = 4` grid (Eq. 14):
//!
//! ```
//! let complex = mei_algebra::complex_omega();
//! assert_eq!(complex.len(), 8); // 2·2·2 grid
//! assert_eq!(complex.iter().filter(|w| **w != 0.0).count(), 4);
//!
//! let quaternion = mei_algebra::quaternion_omega();
//! assert_eq!(quaternion.len(), 64); // 4·4·4 grid
//! assert_eq!(quaternion.iter().filter(|w| **w != 0.0).count(), 16);
//! ```

#![warn(missing_docs)]

pub mod complex;
pub mod embedding;
pub mod expansion;
pub mod octonion;
pub mod quaternion;

pub use complex::Complex;
pub use expansion::{complex_omega, octonion_omega, quaternion_omega, SignedTerm};
pub use octonion::Octonion;
pub use quaternion::Quaternion;

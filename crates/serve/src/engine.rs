//! The batching engine: request queue, worker pool, cache, and swap cell.
//!
//! [`Engine::predict`] is the single entry point every frontend funnels
//! through. A request loads the current `(snapshot, epoch)` pair, consults
//! the epoch-tagged cache, and on a miss parks itself on the shared queue;
//! worker threads drain the queue in batches of up to
//! [`ServeConfig::max_batch`] requests, deduplicate identical
//! `(side, anchor, relation)` queries, and score each distinct query row
//! through one [`TripleScorer::score_block`] call — the same blocked GEMM
//! the evaluator uses — before answering every parked request with
//! [`mei_eval::select_top_k`]. Because single-query and batched paths both
//! go through `score_block` (whose kernel shares its reduction with the
//! pointwise scorer), batched answers are bit-identical to per-query ones;
//! the proptests in `tests/` pin this against the naive
//! [`mei_eval::top_k_reference`] oracle.

use crate::cache::{CacheKey, CacheStats, CachedAnswer, ShardedLruCache};
use crate::snapshot::{Snapshot, SnapshotSwap};
use mei_eval::{select_top_k, BlockQuery, Side, TripleScorer};
use mei_kg::{EntityId, RelationId};
use mei_quant::{screened_answers, ScreenParams};
use mei_obs::{Counter, Gauge, Histogram, JsonValue, MetricsRegistry};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Request latencies land in these histogram buckets (seconds).
const LATENCY_BUCKETS: [f64; 8] = [1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 0.1, 1.0, 10.0];
/// Drained batch sizes land in these histogram buckets.
const BATCH_BUCKETS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
/// Snapshot-install latencies land in these histogram buckets (seconds).
/// The install is a pointer swap plus an epoch bump, so the interesting
/// range is microseconds to single-digit milliseconds.
const SWAP_BUCKETS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0];

/// Tuning knobs for [`Engine::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Scoring worker threads draining the batch queue. `0` starts no
    /// workers at all — requests park until shutdown — which exists so
    /// fault-injection tests can saturate the queue deterministically;
    /// production frontends must pass at least 1.
    pub workers: usize,
    /// Most requests scored per `score_block` call. 32 is the sweet spot
    /// measured at WN18 shape (larger blocks stop paying for themselves
    /// once the entity-table pass no longer dominates).
    pub max_batch: usize,
    /// Number of independent cache shards.
    pub cache_shards: usize,
    /// LRU capacity per shard.
    pub cache_capacity: usize,
    /// Whether the result cache is consulted at all (disabled for the
    /// uncached arms of `repro bench-serve`).
    pub cache: bool,
    /// Most requests allowed to wait on the batch queue at once. Arrivals
    /// beyond this are rejected immediately with
    /// [`ServeError::Overloaded`] instead of growing the queue without
    /// bound — explicit backpressure beats an OOM kill under a traffic
    /// spike.
    pub max_queue: usize,
    /// Quantized screen→rescore candidate generation (`mei-quant`).
    /// `None` serves every query through the exact f32 pass over all
    /// entities; `Some(params)` screens in int8 first and rescores the top
    /// [`ScreenParams::screen_k`] survivors exactly — sublinear in streamed
    /// bytes, with ranking quality governed by the measured recall
    /// contract (`repro bench-serve`).
    pub screen: Option<ScreenParams>,
    /// Number of hottest `(side, anchor, relation, k)` request identities
    /// to precompute into the result cache on every snapshot swap (0 =
    /// off). Precomputed entries carry the new epoch, so the epoch-tagged
    /// invalidation that makes stale cached answers unservable applies to
    /// them unchanged.
    pub precompute_hot: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            max_batch: 32,
            cache_shards: 8,
            cache_capacity: 512,
            cache: true,
            max_queue: 1024,
            screen: None,
            precompute_hot: 0,
        }
    }
}

/// Why a request could not be answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The anchor entity id is outside the snapshot's vocabulary.
    InvalidEntity {
        /// The offending id.
        id: u32,
        /// The vocabulary size it must be below.
        num_entities: usize,
    },
    /// The relation id is outside the snapshot's vocabulary.
    InvalidRelation {
        /// The offending id.
        id: u32,
        /// The vocabulary size it must be below.
        num_relations: usize,
    },
    /// A swap was attempted with a snapshot whose vocabulary sizes differ
    /// from the serving one.
    IncompatibleSnapshot {
        /// `(entities, relations)` currently served.
        current: (usize, usize),
        /// `(entities, relations)` of the rejected snapshot.
        offered: (usize, usize),
    },
    /// The engine is shutting down; the request was not scored.
    ShuttingDown,
    /// The batch queue is full; the request was rejected at admission so
    /// the server degrades by shedding load instead of growing without
    /// bound. Clients should back off and retry.
    Overloaded {
        /// Requests already waiting when this one was rejected.
        queue_depth: usize,
        /// The configured queue bound ([`ServeConfig::max_queue`]).
        max_queue: usize,
    },
}

impl ServeError {
    /// Short machine-readable tag carried in wire error responses, so
    /// clients can branch without parsing prose.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::InvalidEntity { .. } => "invalid_entity",
            ServeError::InvalidRelation { .. } => "invalid_relation",
            ServeError::IncompatibleSnapshot { .. } => "incompatible_snapshot",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Overloaded { .. } => "overloaded",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidEntity { id, num_entities } => {
                write!(f, "entity id {id} out of range (vocabulary has {num_entities} entities)")
            }
            ServeError::InvalidRelation { id, num_relations } => {
                write!(f, "relation id {id} out of range (vocabulary has {num_relations} relations)")
            }
            ServeError::IncompatibleSnapshot { current, offered } => write!(
                f,
                "snapshot vocabulary mismatch: serving {}x{} (entities x relations), offered {}x{}",
                current.0, current.1, offered.0, offered.1
            ),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Overloaded { queue_depth, max_queue } => write!(
                f,
                "server overloaded: {queue_depth} requests already queued (limit {max_queue}); \
                 back off and retry"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// A served answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// `(entity, score)` pairs, best first, known-true entities excluded.
    pub results: CachedAnswer,
    /// Epoch of the snapshot that produced (or cached) the answer.
    pub epoch: u64,
    /// Whether the answer came from the result cache.
    pub cached: bool,
}

/// A request parked on the batch queue, waiting for a worker.
struct Pending {
    query: BlockQuery,
    k: usize,
    snap: Arc<Snapshot>,
    slot: Arc<ResponseSlot>,
}

/// Completion callback installed by a nonblocking submitter: invoked
/// exactly once, after the answer (or shutdown error) lands in the slot.
/// The event-loop frontend uses it to push the connection id onto its
/// completion list and kick the wakeup fd.
pub type Waker = Box<dyn FnOnce() + Send + 'static>;

/// One-shot rendezvous between a parked request and the worker that
/// answers it.
struct ResponseSlot {
    result: Mutex<Option<Result<CachedAnswer, ServeError>>>,
    ready: Condvar,
    /// Taken and invoked by `fulfill`. Installed at construction —
    /// before the request is queued — so the callback can never race
    /// with a worker that answers immediately.
    waker: Mutex<Option<Waker>>,
}

impl ResponseSlot {
    fn new(waker: Option<Waker>) -> Arc<Self> {
        Arc::new(Self {
            result: Mutex::new(None),
            ready: Condvar::new(),
            waker: Mutex::new(waker),
        })
    }

    fn fulfill(&self, value: Result<CachedAnswer, ServeError>) {
        {
            let mut slot = self.result.lock().unwrap();
            *slot = Some(value);
            self.ready.notify_all();
        }
        // Outside the result lock: the waker takes other locks (the
        // frontend's completion list) and must observe the stored result.
        let waker = self.waker.lock().unwrap().take();
        if let Some(wake) = waker {
            wake();
        }
    }

    fn wait(&self) -> Result<CachedAnswer, ServeError> {
        let mut slot = self.result.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.ready.wait(slot).unwrap();
        }
    }

    /// Nonblocking counterpart of `wait`: the answer if it has landed.
    fn try_take(&self) -> Option<Result<CachedAnswer, ServeError>> {
        self.result.lock().unwrap().take()
    }
}

/// Outcome of a nonblocking [`Engine::submit`].
pub enum Submission {
    /// Answered synchronously: cache hit, validation error, overload
    /// rejection, or shutdown. No worker involvement, no waker call.
    Ready(Result<Prediction, ServeError>),
    /// Parked on the batch queue. The waker passed to `submit` fires
    /// when the answer lands; redeem the ticket with
    /// [`Engine::try_finish`].
    Parked(Ticket),
}

/// A claim on a parked request's eventual answer.
pub struct Ticket {
    slot: Arc<ResponseSlot>,
    key: CacheKey,
    epoch: u64,
    started: Instant,
}

/// Frequency sketch of recent request identities, feeding the
/// precompute-on-swap pass. A bounded count map with periodic halving
/// decay: when the map outgrows its cap every count is halved and zeros
/// are dropped, so sustained-hot keys dominate one-off bursts and the map
/// never grows without bound.
struct HotTracker {
    counts: HashMap<CacheKey, u64>,
    cap: usize,
}

impl HotTracker {
    fn new(cap: usize) -> Self {
        Self { counts: HashMap::new(), cap: cap.max(1) }
    }

    fn record(&mut self, key: CacheKey) {
        *self.counts.entry(key).or_insert(0) += 1;
        if self.counts.len() > self.cap {
            self.counts.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
        }
    }

    /// The `n` hottest keys, count-descending with a total key order on
    /// ties so the precompute set is deterministic for a given history.
    fn hottest(&self, n: usize) -> Vec<CacheKey> {
        let order = |k: &CacheKey| {
            (
                match k.query.side {
                    Side::Head => 0u8,
                    Side::Tail => 1,
                },
                k.query.anchor.0,
                k.query.relation.0,
                k.k,
            )
        };
        let mut keys: Vec<(&CacheKey, &u64)> = self.counts.iter().collect();
        keys.sort_by(|a, b| b.1.cmp(a.1).then_with(|| order(a.0).cmp(&order(b.0))));
        keys.into_iter().take(n).map(|(k, _)| *k).collect()
    }
}

/// State shared between the public [`Engine`] handle and its workers.
struct Shared {
    swap: SnapshotSwap,
    cache: ShardedLruCache,
    cache_enabled: bool,
    max_batch: usize,
    max_queue: usize,
    screen: Option<ScreenParams>,
    precompute_hot: usize,
    hot: Mutex<HotTracker>,
    queue: Mutex<VecDeque<Pending>>,
    available: Condvar,
    stop: AtomicBool,
    metrics: MetricsRegistry,
    requests: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    swaps: Arc<Counter>,
    errors: Arc<Counter>,
    rejected: Arc<Counter>,
    screened_queries: Arc<Counter>,
    precomputed: Arc<Counter>,
    latency_secs: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    swap_latency: Arc<Histogram>,
    epoch_gauge: Arc<Gauge>,
}

/// The sorted, deduplicated known-true exclusion list for one query.
fn sorted_exclusions(snap: &Snapshot, q: &BlockQuery) -> Vec<EntityId> {
    let mut excluded: Vec<EntityId> = match q.side {
        Side::Tail => snap.exclude.tails_of(q.anchor, q.relation),
        Side::Head => snap.exclude.heads_of(q.anchor, q.relation),
    }
    .to_vec();
    excluded.sort_unstable();
    excluded.dedup();
    excluded
}

impl Shared {
    /// The worker loop: sleep until requests arrive, drain up to
    /// `max_batch`, score, answer.
    fn work(&self) {
        let mut scratch: Vec<f32> = Vec::new();
        loop {
            let batch = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if !queue.is_empty() {
                        let take = queue.len().min(self.max_batch);
                        break queue.drain(..take).collect::<Vec<Pending>>();
                    }
                    if self.stop.load(Ordering::Acquire) {
                        return;
                    }
                    queue = self.available.wait(queue).unwrap();
                }
            };
            self.batch_size.observe(batch.len() as f64);
            self.score_batch(batch, &mut scratch);
        }
    }

    /// Scores one drained batch. Requests are grouped by the snapshot they
    /// loaded (a swap mid-flight may leave a batch straddling two
    /// snapshots; each group scores against exactly the snapshot its
    /// requests observed), identical queries within a group are scored
    /// once at the widest requested `k`, and every request is answered
    /// with a prefix of its query's answer — identical to what a
    /// per-request `select_top_k` would return, since both orders are the
    /// `(score desc, id asc)` truncation of the same candidate ranking.
    fn score_batch(&self, mut batch: Vec<Pending>, scratch: &mut Vec<f32>) {
        while !batch.is_empty() {
            let snap = Arc::clone(&batch[0].snap);
            let (group, rest): (Vec<Pending>, Vec<Pending>) =
                batch.into_iter().partition(|p| Arc::ptr_eq(&p.snap, &snap));
            batch = rest;

            let mut rows: HashMap<BlockQuery, usize> = HashMap::with_capacity(group.len());
            let mut queries: Vec<BlockQuery> = Vec::with_capacity(group.len());
            let mut ks: Vec<usize> = Vec::with_capacity(group.len());
            for p in &group {
                let row = *rows.entry(p.query).or_insert_with(|| {
                    queries.push(p.query);
                    ks.push(0);
                    queries.len() - 1
                });
                ks[row] = ks[row].max(p.k);
            }
            let answers = self.answer_distinct(&snap, &queries, &ks, scratch);

            for p in group {
                let row = rows[&p.query];
                let mut list = answers[row].clone();
                list.truncate(p.k);
                p.slot.fulfill(Ok(Arc::new(list)));
            }
        }
    }

    /// Answers a set of *distinct* queries at per-query depths `ks` —
    /// through the quantized screen→rescore path when configured, the
    /// exact blocked f32 pass otherwise. Both paths order candidates
    /// `(score desc, id asc)`; the screened answer is bit-identical to the
    /// exact one whenever its survivor set covers the true top-`ks[i]`.
    fn answer_distinct(
        &self,
        snap: &Snapshot,
        queries: &[BlockQuery],
        ks: &[usize],
        scratch: &mut Vec<f32>,
    ) -> Vec<Vec<(EntityId, f32)>> {
        let excluded: Vec<Vec<EntityId>> =
            queries.iter().map(|q| sorted_exclusions(snap, q)).collect();
        if let Some(params) = self.screen {
            let refs: Vec<&[EntityId]> = excluded.iter().map(Vec::as_slice).collect();
            let index = snap.screen_index();
            self.screened_queries.add(queries.len() as u64);
            return screened_answers(&snap.model, &index, queries, ks, &refs, &params);
        }
        let ne = snap.model.num_entities();
        scratch.clear();
        scratch.resize(queries.len() * ne, 0.0);
        snap.model.score_block(queries, scratch);
        queries
            .iter()
            .enumerate()
            .map(|(row, _)| {
                select_top_k(&scratch[row * ne..(row + 1) * ne], ks[row], &excluded[row])
            })
            .collect()
    }

    /// Recomputes the hottest request identities against the snapshot
    /// installed at `epoch` and parks the answers in the result cache under
    /// that epoch — so post-swap traffic on hot keys hits the cache
    /// immediately instead of each paying a full scoring pass. If another
    /// swap raced past, the reload sees a newer epoch and the precompute is
    /// skipped; had it raced *after* the reload, the entries would be
    /// born-stale and unservable anyway (epoch-tagged lookup).
    fn precompute_hot_keys(&self, epoch: u64) {
        if self.precompute_hot == 0 || !self.cache_enabled {
            return;
        }
        let keys = self.hot.lock().unwrap().hottest(self.precompute_hot);
        if keys.is_empty() {
            return;
        }
        let (snap, loaded) = self.swap.load();
        if loaded != epoch {
            return;
        }
        let mut rows: HashMap<BlockQuery, usize> = HashMap::with_capacity(keys.len());
        let mut queries: Vec<BlockQuery> = Vec::with_capacity(keys.len());
        let mut ks: Vec<usize> = Vec::with_capacity(keys.len());
        for key in &keys {
            let row = *rows.entry(key.query).or_insert_with(|| {
                queries.push(key.query);
                ks.push(0);
                queries.len() - 1
            });
            ks[row] = ks[row].max(key.k);
        }
        let mut scratch = Vec::new();
        let answers = self.answer_distinct(&snap, &queries, &ks, &mut scratch);
        for key in keys {
            let row = rows[&key.query];
            let mut list = answers[row].clone();
            list.truncate(key.k);
            self.cache.insert(key, epoch, Arc::new(list));
            self.precomputed.inc();
        }
    }
}

/// The serving engine: owns the worker pool and the shared state.
///
/// Dropping the engine shuts it down; [`Engine::shutdown`] does the same
/// explicitly and is idempotent.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Engine {
    /// Spins up the worker pool and returns the engine handle.
    pub fn start(initial: Snapshot, config: ServeConfig) -> Self {
        let metrics = MetricsRegistry::new();
        let shared = Arc::new(Shared {
            swap: SnapshotSwap::new(initial),
            cache: ShardedLruCache::new(config.cache_shards, config.cache_capacity),
            cache_enabled: config.cache,
            max_batch: config.max_batch.max(1),
            max_queue: config.max_queue.max(1),
            screen: config.screen,
            precompute_hot: config.precompute_hot,
            hot: Mutex::new(HotTracker::new((config.precompute_hot * 8).max(64))),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            requests: metrics.counter("serve/requests"),
            cache_hits: metrics.counter("serve/cache_hits"),
            cache_misses: metrics.counter("serve/cache_misses"),
            swaps: metrics.counter("serve/swaps"),
            errors: metrics.counter("serve/errors"),
            rejected: metrics.counter("serve/rejected"),
            screened_queries: metrics.counter("serve/screened_queries"),
            precomputed: metrics.counter("serve/precomputed"),
            latency_secs: metrics.histogram("serve/latency_secs", &LATENCY_BUCKETS),
            batch_size: metrics.histogram("serve/batch_size", &BATCH_BUCKETS),
            swap_latency: metrics.histogram("serve/swap_latency_secs", &SWAP_BUCKETS),
            epoch_gauge: metrics.gauge("serve/epoch"),
            metrics,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mei-serve-worker-{i}"))
                    .spawn(move || shared.work())
                    .expect("spawn serve worker")
            })
            .collect();
        Self { shared, workers: Mutex::new(workers) }
    }

    /// Answers one top-`k` query: the `k` best entities for the open slot
    /// of `(side, anchor, relation)`, known-true triples excluded. Blocks
    /// until the answer lands; built on [`Engine::submit`], so the
    /// blocking and event-loop frontends share every admission, cache,
    /// and metrics decision.
    pub fn predict(
        &self,
        side: Side,
        anchor: EntityId,
        relation: RelationId,
        k: usize,
    ) -> Result<Prediction, ServeError> {
        match self.submit(side, anchor, relation, k, None) {
            Submission::Ready(outcome) => outcome,
            Submission::Parked(ticket) => {
                let result = ticket.slot.wait();
                self.finish(&ticket, result)
            }
        }
    }

    /// Nonblocking admission of one top-`k` query. Cache hits, validation
    /// errors, overload rejections, and shutdown resolve synchronously as
    /// [`Submission::Ready`]; everything else parks on the batch queue and
    /// returns a [`Ticket`]. If `waker` is supplied it fires exactly once,
    /// when the parked answer (or shutdown error) lands — after which
    /// [`Engine::try_finish`] redeems the ticket without blocking.
    pub fn submit(
        &self,
        side: Side,
        anchor: EntityId,
        relation: RelationId,
        k: usize,
        waker: Option<Waker>,
    ) -> Submission {
        let started = Instant::now();
        let shared = &self.shared;
        shared.requests.inc();
        let ready = |outcome: Result<Prediction, ServeError>| {
            if outcome.is_err() {
                shared.errors.inc();
            }
            shared.latency_secs.observe(started.elapsed().as_secs_f64());
            Submission::Ready(outcome)
        };
        if shared.stop.load(Ordering::Acquire) {
            return ready(Err(ServeError::ShuttingDown));
        }
        let (snap, epoch) = shared.swap.load();
        let cfg = snap.model.config();
        if anchor.idx() >= cfg.num_entities {
            return ready(Err(ServeError::InvalidEntity {
                id: anchor.0,
                num_entities: cfg.num_entities,
            }));
        }
        if relation.idx() >= cfg.num_relations {
            return ready(Err(ServeError::InvalidRelation {
                id: relation.0,
                num_relations: cfg.num_relations,
            }));
        }

        let query = match side {
            Side::Tail => BlockQuery::tails(anchor, relation),
            Side::Head => BlockQuery::heads(anchor, relation),
        };
        let key = CacheKey { query, k };
        if shared.precompute_hot > 0 && shared.cache_enabled {
            // Count hits and misses alike: a key that keeps hitting the
            // cache is exactly the kind worth precomputing after a swap.
            shared.hot.lock().unwrap().record(key);
        }
        if shared.cache_enabled {
            if let Some(results) = shared.cache.get(&key, epoch) {
                shared.cache_hits.inc();
                return ready(Ok(Prediction { results, epoch, cached: true }));
            }
            shared.cache_misses.inc();
        }

        let slot = ResponseSlot::new(waker);
        {
            let mut queue = shared.queue.lock().unwrap();
            if shared.stop.load(Ordering::Acquire) {
                return ready(Err(ServeError::ShuttingDown));
            }
            // Admission control under the same lock that guards the push:
            // the queue can never exceed its bound, and overload is
            // reported immediately instead of stalling the client.
            if queue.len() >= shared.max_queue {
                shared.rejected.inc();
                return ready(Err(ServeError::Overloaded {
                    queue_depth: queue.len(),
                    max_queue: shared.max_queue,
                }));
            }
            queue.push_back(Pending { query, k, snap, slot: Arc::clone(&slot) });
        }
        shared.available.notify_one();
        Submission::Parked(Ticket { slot, key, epoch, started })
    }

    /// Redeems a ticket whose waker has fired. Returns `Err(ticket)` if
    /// the answer has not actually landed yet (a spurious wake), so the
    /// caller can re-park it.
    pub fn try_finish(&self, ticket: Ticket) -> Result<Result<Prediction, ServeError>, Ticket> {
        match ticket.slot.try_take() {
            Some(result) => Ok(self.finish(&ticket, result)),
            None => Err(ticket),
        }
    }

    /// Completion bookkeeping shared by the blocking and nonblocking
    /// paths: cache fill, error count, latency observation.
    fn finish(
        &self,
        ticket: &Ticket,
        result: Result<CachedAnswer, ServeError>,
    ) -> Result<Prediction, ServeError> {
        let shared = &self.shared;
        let outcome = result.map(|results| {
            if shared.cache_enabled {
                // Tagged with the epoch loaded at admission: if a swap
                // landed while we were scoring, the entry is born stale
                // and can never be served.
                shared.cache.insert(ticket.key, ticket.epoch, Arc::clone(&results));
            }
            Prediction { results, epoch: ticket.epoch, cached: false }
        });
        if outcome.is_err() {
            shared.errors.inc();
        }
        shared.latency_secs.observe(ticket.started.elapsed().as_secs_f64());
        outcome
    }

    /// Atomically installs a new snapshot, invalidating all cached answers
    /// via the epoch bump, and returns the new epoch. The snapshot must
    /// have the same vocabulary sizes as the serving one.
    ///
    /// The install itself — pointer swap plus epoch bump, timed into
    /// `serve/swap_latency_secs` — is kept deliberately cheap so a
    /// million-entity redeploy is visible to traffic immediately. The
    /// int8 screen-index build and the hot-key precompute run *after*
    /// the bump (still synchronously, so callers like the wire `swap` op
    /// observe a fully warm engine on return): queries racing the index
    /// build pay a one-time quantization stall at worst, instead of every
    /// swap paying it before the new epoch can serve at all.
    pub fn swap_snapshot(&self, next: Snapshot) -> Result<u64, ServeError> {
        let (current, _) = self.shared.swap.load();
        if !current.compatible_with(&next) {
            self.shared.errors.inc();
            return Err(ServeError::IncompatibleSnapshot {
                current: (current.entities.len(), current.relations.len()),
                offered: (next.entities.len(), next.relations.len()),
            });
        }
        let next = Arc::new(next);
        let install_started = Instant::now();
        let epoch = self.shared.swap.swap_arc(Arc::clone(&next));
        self.shared.swap_latency.observe(install_started.elapsed().as_secs_f64());
        self.shared.swaps.inc();
        self.shared.epoch_gauge.set(epoch as f64);
        if self.shared.screen.is_some() {
            next.screen_index();
        }
        self.shared.precompute_hot_keys(epoch);
        Ok(epoch)
    }

    /// The configured screen parameters (`None` = exact serving).
    pub fn screen_params(&self) -> Option<ScreenParams> {
        self.shared.screen
    }

    /// How many hot request identities are precomputed on each swap.
    pub fn precompute_hot(&self) -> usize {
        self.shared.precompute_hot
    }

    /// The currently served snapshot and its epoch.
    pub fn snapshot(&self) -> (Arc<Snapshot>, u64) {
        self.shared.swap.load()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.swap.epoch()
    }

    /// Requests currently parked on the batch queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// The engine's metrics registry — frontends hang their own counters
    /// (I/O timeouts, oversize lines) here so one `stats` snapshot covers
    /// the whole serving stack.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// Result-cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// One JSON object with every serving metric (counters, latency and
    /// batch-size histograms, epoch gauge) — the payload behind the wire
    /// `stats` op and the JSONL observer line.
    pub fn metrics_snapshot(&self) -> JsonValue {
        self.shared.epoch_gauge.set(self.epoch() as f64);
        self.shared.metrics.snapshot()
    }

    /// Stops the workers and fails any still-parked requests with
    /// [`ServeError::ShuttingDown`]. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.available.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for handle in workers {
            let _ = handle.join();
        }
        // Workers are gone; anything still queued will never be scored.
        let leftovers: Vec<Pending> =
            self.shared.queue.lock().unwrap().drain(..).collect();
        for p in leftovers {
            p.slot.fulfill(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mei_core::{MultiEmbedModel, WeightPreset};
    use mei_kg::{Triple, TripleStore};
    use rand::{rngs::StdRng, SeedableRng};

    fn snapshot(seed: u64, exclude: TripleStore) -> Snapshot {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 20, 3, 8, &mut rng);
        Snapshot::with_ids(model, exclude)
    }

    #[test]
    fn predict_matches_reference_both_sides() {
        let exclude: TripleStore = [Triple::new(0, 3, 1)].into_iter().collect();
        let snap = snapshot(7, exclude.clone());
        let engine = Engine::start(snapshot(7, exclude.clone()), ServeConfig::default());
        for side in [Side::Tail, Side::Head] {
            let got = engine.predict(side, EntityId(0), RelationId(1), 5).unwrap();
            let want =
                mei_eval::top_k_reference(&snap.model, side, EntityId(0), RelationId(1), 5, &exclude);
            assert_eq!(*got.results, want, "side {side:?}");
        }
        engine.shutdown();
    }

    #[test]
    fn cache_hits_on_repeat_and_misses_after_swap() {
        let engine = Engine::start(snapshot(1, TripleStore::new()), ServeConfig::default());
        let first = engine.predict(Side::Tail, EntityId(2), RelationId(0), 4).unwrap();
        assert!(!first.cached);
        let second = engine.predict(Side::Tail, EntityId(2), RelationId(0), 4).unwrap();
        assert!(second.cached);
        assert_eq!(*first.results, *second.results);

        let epoch = engine.swap_snapshot(snapshot(2, TripleStore::new())).unwrap();
        assert_eq!(epoch, 1);
        let third = engine.predict(Side::Tail, EntityId(2), RelationId(0), 4).unwrap();
        assert!(!third.cached, "swap must invalidate the cache");
        assert_eq!(third.epoch, 1);
        engine.shutdown();
    }

    #[test]
    fn out_of_range_ids_are_rejected() {
        let engine = Engine::start(snapshot(1, TripleStore::new()), ServeConfig::default());
        assert_eq!(
            engine.predict(Side::Tail, EntityId(99), RelationId(0), 3),
            Err(ServeError::InvalidEntity { id: 99, num_entities: 20 })
        );
        assert_eq!(
            engine.predict(Side::Head, EntityId(0), RelationId(9), 3),
            Err(ServeError::InvalidRelation { id: 9, num_relations: 3 })
        );
        engine.shutdown();
    }

    #[test]
    fn incompatible_swap_is_rejected() {
        let engine = Engine::start(snapshot(1, TripleStore::new()), ServeConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let small = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 5, 3, 8, &mut rng);
        let err = engine
            .swap_snapshot(Snapshot::with_ids(small, TripleStore::new()))
            .unwrap_err();
        assert!(matches!(err, ServeError::IncompatibleSnapshot { .. }));
        assert_eq!(engine.epoch(), 0);
        engine.shutdown();
    }

    #[test]
    fn predict_after_shutdown_fails_fast() {
        let engine = Engine::start(snapshot(1, TripleStore::new()), ServeConfig::default());
        engine.shutdown();
        assert_eq!(
            engine.predict(Side::Tail, EntityId(0), RelationId(0), 1),
            Err(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn saturated_queue_rejects_with_overloaded_and_counts_it() {
        // workers: 0 → nothing drains, so the queue fills deterministically.
        let cfg = ServeConfig { workers: 0, cache: false, max_queue: 3, ..ServeConfig::default() };
        let engine = Arc::new(Engine::start(snapshot(1, TripleStore::new()), cfg));

        // Park exactly max_queue requests on the queue from helper threads.
        let parked: Vec<_> = (0..3)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    engine.predict(Side::Tail, EntityId(i), RelationId(0), 2)
                })
            })
            .collect();
        while engine.queue_depth() < 3 {
            std::thread::yield_now();
        }

        // The next arrival must be shed, not queued.
        let err = engine.predict(Side::Tail, EntityId(9), RelationId(0), 2).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { queue_depth: 3, max_queue: 3 });
        assert_eq!(err.kind(), "overloaded");
        assert_eq!(engine.queue_depth(), 3, "rejection must not grow the queue");

        let metrics = engine.metrics_snapshot();
        let counter = |name: &str| {
            metrics.get(name).and_then(|v| v.get("value")).and_then(|v| v.as_usize())
        };
        assert_eq!(counter("serve/rejected"), Some(1));

        // Shutdown fails the parked requests fast instead of hanging them.
        engine.shutdown();
        for handle in parked {
            assert_eq!(handle.join().unwrap(), Err(ServeError::ShuttingDown));
        }
    }

    #[test]
    fn metrics_snapshot_reports_counters() {
        let engine = Engine::start(snapshot(1, TripleStore::new()), ServeConfig::default());
        engine.predict(Side::Tail, EntityId(0), RelationId(0), 2).unwrap();
        engine.predict(Side::Tail, EntityId(0), RelationId(0), 2).unwrap();
        let snap = engine.metrics_snapshot();
        let counter = |name: &str| {
            snap.get(name).and_then(|v| v.get("value")).and_then(|v| v.as_usize())
        };
        assert_eq!(counter("serve/requests"), Some(2));
        assert_eq!(counter("serve/cache_hits"), Some(1));
        engine.shutdown();
    }
}

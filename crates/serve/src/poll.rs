//! Minimal std-only epoll + eventfd wrapper (Linux).
//!
//! The event loop in [`crate::server`] needs exactly four kernel
//! facilities: an epoll instance, registration of interest, a blocking
//! wait with a millisecond deadline, and a cross-thread wakeup fd. None
//! of them require an async runtime or the `libc` crate — the symbols
//! live in the C library the Rust standard library already links, so a
//! handful of `extern "C"` declarations is the whole FFI surface. This
//! mirrors the workspace's no-async-runtime stance: readiness
//! notification is a syscall, not a framework.
//!
//! Only Linux is supported (epoll is a Linux API); the rest of the
//! workspace is portable, so the gate lives here where the dependency
//! actually is.

#![cfg(target_os = "linux")]

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{FromRawFd, OwnedFd};
use std::os::unix::io::{AsRawFd, RawFd};

#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type c_uint = u32;

/// Readable (or a pending connection on a listener).
pub const EPOLLIN: u32 = 0x001;
/// Writable without blocking.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never needs registering).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;
const EFD_CLOEXEC: c_int = 0o2000000;

/// One readiness notification. Layout matches glibc's `struct
/// epoll_event` (packed on x86-64, natural elsewhere — glibc's
/// `__EPOLL_PACKED`).
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The token registered with [`Poller::add`].
    pub token: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance: register fds with a `u64` token, wait for
/// readiness.
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self { epfd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent { events, token };
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` for `events`, delivering `token` on readiness.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, events)
    }

    /// Changes the interest set of an already-registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, events)
    }

    /// Deregisters `fd`. Missing registrations are not an error (closing
    /// an fd deregisters it implicitly).
    pub fn del(&self, fd: RawFd) {
        let mut ev = EpollEvent { events: 0, token: 0 };
        let _ = unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Waits up to `timeout_ms` (negative = forever) and appends ready
    /// events into `out`, returning how many arrived. `EINTR` is
    /// reported as zero events, so callers treat a signal like a timer
    /// tick instead of an error.
    pub fn wait(&self, out: &mut Vec<EpollEvent>, timeout_ms: i32, max_events: usize) -> io::Result<usize> {
        out.clear();
        out.resize(max_events, EpollEvent { events: 0, token: 0 });
        let n = unsafe {
            epoll_wait(self.epfd.as_raw_fd(), out.as_mut_ptr(), max_events as c_int, timeout_ms)
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                out.clear();
                return Ok(0);
            }
            return Err(err);
        }
        out.truncate(n as usize);
        Ok(n as usize)
    }
}

/// A cross-thread wakeup fd (eventfd): any thread can [`WakeFd::wake`]
/// the event loop out of `epoll_wait`; the loop [`WakeFd::drain`]s it
/// back to quiescence. Both ends are nonblocking, so a wake can never
/// stall the caller (a saturated counter just means the loop is already
/// signalled).
pub struct WakeFd {
    file: File,
}

impl WakeFd {
    /// Creates the nonblocking eventfd.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(Self { file: unsafe { File::from_raw_fd(fd) } })
    }

    /// The raw fd, for registering with a [`Poller`].
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Signals the event loop. Never blocks; errors are ignored because
    /// the only failure mode of a nonblocking eventfd write is "counter
    /// already saturated", which means the loop is already waking.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&self.file).write(&one);
    }

    /// Clears the pending wake count so the next `epoll_wait` sleeps.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        while let Ok(n) = (&self.file).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn wake_fd_round_trips_through_epoll() {
        let poller = Poller::new().unwrap();
        let wake = WakeFd::new().unwrap();
        poller.add(wake.raw_fd(), 7, EPOLLIN).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a zero timeout returns immediately with no events.
        assert_eq!(poller.wait(&mut events, 0, 8).unwrap(), 0);

        wake.wake();
        wake.wake(); // coalesces: still one readiness event
        assert_eq!(poller.wait(&mut events, 1000, 8).unwrap(), 1);
        // Copy fields out: taking references into a packed struct is UB.
        let (token, mask) = (events[0].token, events[0].events);
        assert_eq!(token, 7);
        assert_ne!(mask & EPOLLIN, 0);

        wake.drain();
        assert_eq!(poller.wait(&mut events, 0, 8).unwrap(), 0);
    }

    #[test]
    fn listener_readiness_fires_on_pending_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 1, EPOLLIN).unwrap();

        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 0, 8).unwrap(), 0);

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        assert_eq!(poller.wait(&mut events, 2000, 8).unwrap(), 1);
        let token = events[0].token;
        assert_eq!(token, 1);

        let (accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poller.add(accepted.as_raw_fd(), 2, EPOLLIN | EPOLLRDHUP).unwrap();
        client.write_all(b"hi").unwrap();
        assert_eq!(poller.wait(&mut events, 2000, 8).unwrap(), 1);
        let token = events[0].token;
        assert_eq!(token, 2);
        poller.del(accepted.as_raw_fd());
    }
}

//! The TCP frontend: plain threads, no async runtime.
//!
//! One accept thread hands each connection to its own handler thread; every
//! handler reads newline-delimited requests, dispatches them through
//! [`crate::wire::handle_line`], and writes one response line per request.
//! Concurrency in the scoring path comes from the engine's batch queue, not
//! from here — handler threads exist only to park on socket reads, so the
//! thread-per-connection model costs one blocked thread per idle client and
//! nothing else.
//!
//! Shutdown is cooperative and deadlock-free: [`Server::shutdown`] flips the
//! stop flag, self-connects once to unblock `accept`, and shuts down every
//! live client socket so handler reads return immediately, then joins all
//! threads. A client can also trigger the same sequence remotely with the
//! wire `shutdown` op.
//!
//! The frontend trusts nobody ([`ServerConfig`]): every accepted socket
//! gets read/write timeouts so an idle or stalled client cannot pin its
//! handler thread forever, and request lines are read through a bounded
//! reader — a client streaming bytes with no newline is answered with a
//! structured `line_too_long` wire error and disconnected instead of
//! growing a `String` until the process OOMs.

use crate::engine::Engine;
use crate::wire;
use parking_lot::Mutex;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection I/O limits for [`Server::start_with`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How long a socket read may block before the connection is dropped.
    /// `None` waits forever (the pre-hardening behavior; not recommended).
    pub read_timeout: Option<Duration>,
    /// How long a socket write may block before the connection is dropped.
    pub write_timeout: Option<Duration>,
    /// Longest accepted request line in bytes; longer lines get a
    /// `line_too_long` wire error and the connection is closed.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            max_line_bytes: 1 << 20, // 1 MiB
        }
    }
}

struct ServerShared {
    engine: Arc<Engine>,
    config: ServerConfig,
    stop: AtomicBool,
    addr: SocketAddr,
    /// Live client sockets, kept so shutdown can unblock their readers.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerShared {
    fn begin_shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock every handler parked in a socket read.
        for (_, stream) in self.conns.lock().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A running NDJSON-over-TCP server wrapping an [`Engine`].
pub struct Server {
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts accepting
    /// with the default [`ServerConfig`] limits.
    pub fn start<A: ToSocketAddrs>(engine: Arc<Engine>, addr: A) -> io::Result<Self> {
        Self::start_with(engine, addr, ServerConfig::default())
    }

    /// [`Server::start`] with explicit per-connection limits.
    pub fn start_with<A: ToSocketAddrs>(
        engine: Arc<Engine>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(ServerShared {
            engine,
            config,
            stop: AtomicBool::new(false),
            addr: listener.local_addr()?,
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("mei-serve-accept".to_owned())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Self { shared, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether a shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Stops accepting, disconnects clients, joins all threads, and shuts
    /// down the engine. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        // Stop the engine *before* joining handler threads: a handler can
        // be parked inside `Engine::predict` waiting on the batch queue
        // (not on a socket), and only the engine's shutdown fails those
        // requests with `ShuttingDown` and wakes the thread. Joining
        // first would deadlock on any such handler.
        self.shared.engine.shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handlers = std::mem::take(&mut *self.shared.handlers.lock());
        for handle in handlers {
            let _ = handle.join();
        }
    }

    /// Blocks until the accept loop exits (i.e. until a wire `shutdown`
    /// op or a local [`Server::shutdown`] call), then completes the
    /// shutdown sequence. This is what `mei serve` parks on.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    let mut next_id: u64 = 0;
    for incoming in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match incoming {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_id = next_id;
        next_id += 1;
        // Apply the I/O limits before the handler ever touches the socket,
        // so even the first read of a hostile connection is bounded.
        if stream.set_read_timeout(shared.config.read_timeout).is_err()
            || stream.set_write_timeout(shared.config.write_timeout).is_err()
        {
            continue;
        }
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => continue,
        };
        shared.conns.lock().push((conn_id, stream));
        let handler_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("mei-serve-conn-{conn_id}"))
            .spawn(move || {
                handle_connection(reader, &handler_shared);
                handler_shared.conns.lock().retain(|(id, _)| *id != conn_id);
            });
        match handle {
            Ok(h) => shared.handlers.lock().push(h),
            Err(_) => shared.conns.lock().retain(|(id, _)| *id != conn_id),
        }
    }
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line (newline stripped), or the final unterminated line
    /// before EOF — matching `BufRead::lines` semantics.
    Line(String),
    /// Clean end of stream with no pending bytes.
    Eof,
    /// The line exceeded the cap before a newline arrived. The excess is
    /// deliberately *not* drained: the caller reports the error and closes,
    /// so a slow-loris sender cannot keep the thread busy discarding bytes.
    TooLong,
    /// Read error (including a timeout firing).
    Err,
}

/// Reads one `\n`-terminated line of at most `max_bytes` bytes.
///
/// Unlike `BufRead::read_line` this never grows the buffer past the cap:
/// it consumes directly from the `BufReader`'s internal buffer and stops
/// accumulating the moment the cap is crossed.
fn read_bounded_line(reader: &mut BufReader<TcpStream>, max_bytes: usize) -> LineRead {
    let mut line = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(_) => return LineRead::Err,
        };
        if buf.is_empty() {
            return if line.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(String::from_utf8_lossy(&line).into_owned())
            };
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max_bytes {
                    return LineRead::TooLong;
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                return LineRead::Line(String::from_utf8_lossy(&line).into_owned());
            }
            None => {
                let take = buf.len();
                if line.len() + take > max_bytes {
                    return LineRead::TooLong;
                }
                line.extend_from_slice(buf);
                reader.consume(take);
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &ServerShared) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let max_line = shared.config.max_line_bytes;
    let mut reader = BufReader::new(stream);
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let line = match read_bounded_line(&mut reader, max_line) {
            LineRead::Line(l) => l,
            LineRead::Eof | LineRead::Err => break,
            LineRead::TooLong => {
                // Tell the client why, then drop the connection; resyncing
                // on a stream that already violated the framing contract
                // is not worth holding the thread for.
                let response = wire::oversize_line_response(max_line);
                let _ = writer
                    .write_all(response.as_bytes())
                    .and_then(|_| writer.write_all(b"\n"))
                    .and_then(|_| writer.flush());
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = wire::handle_line(&shared.engine, &line);
        if writer
            .write_all(response.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown {
            shared.begin_shutdown();
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::snapshot::Snapshot;
    use mei_core::{MultiEmbedModel, WeightPreset};
    use mei_kg::TripleStore;
    use mei_obs::json::parse;
    use mei_obs::JsonValue;
    use rand::{rngs::StdRng, SeedableRng};

    fn server() -> Server {
        let mut rng = StdRng::seed_from_u64(21);
        let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 15, 2, 4, &mut rng);
        let engine =
            Arc::new(Engine::start(Snapshot::with_ids(model, TripleStore::new()), ServeConfig::default()));
        Server::start(engine, "127.0.0.1:0").unwrap()
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> JsonValue {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        parse(response.trim_end()).unwrap()
    }

    #[test]
    fn serves_ping_and_predict_over_tcp() {
        let mut server = server();
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        let pong = roundtrip(&mut client, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("ok"), Some(&JsonValue::Bool(true)));
        let answer = roundtrip(
            &mut client,
            r#"{"op":"predict","side":"tail","anchor":0,"relation":0,"k":2}"#,
        );
        assert_eq!(answer.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(answer.get("results").and_then(|r| r.as_arr()).map(|r| r.len()), Some(2));
        server.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_server() {
        let server = server();
        let addr = server.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        let ack = roundtrip(&mut client, r#"{"op":"shutdown"}"#);
        assert_eq!(ack.get("ok"), Some(&JsonValue::Bool(true)));
        // wait() returns because the accept loop exits.
        server.wait();
        // The port no longer answers.
        assert!(TcpStream::connect(addr).is_err() || {
            // A connect may still succeed momentarily on some kernels if
            // the backlog drains late; a subsequent read must then EOF.
            let s = TcpStream::connect(addr);
            match s {
                Ok(sock) => {
                    let mut r = BufReader::new(sock);
                    let mut line = String::new();
                    r.read_line(&mut line).map(|n| n == 0).unwrap_or(true)
                }
                Err(_) => true,
            }
        });
    }

    #[test]
    fn local_shutdown_is_idempotent_and_unblocks_clients() {
        let mut server = server();
        let _idle = TcpStream::connect(server.local_addr()).unwrap();
        server.shutdown();
        server.shutdown();
        assert!(server.is_shutting_down());
    }

    fn tiny_limits_server(max_line_bytes: usize) -> Server {
        let mut rng = StdRng::seed_from_u64(21);
        let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 15, 2, 4, &mut rng);
        let engine =
            Arc::new(Engine::start(Snapshot::with_ids(model, TripleStore::new()), ServeConfig::default()));
        let config = ServerConfig {
            read_timeout: Some(Duration::from_millis(300)),
            write_timeout: Some(Duration::from_millis(300)),
            max_line_bytes,
        };
        Server::start_with(engine, "127.0.0.1:0", config).unwrap()
    }

    #[test]
    fn oversize_request_line_gets_a_structured_error_then_disconnect() {
        let mut server = tiny_limits_server(64);
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        // 200 bytes, no newline needed for the cap to trip.
        client.write_all(&[b'x'; 200]).unwrap();
        client.flush().unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let parsed = parse(response.trim_end()).unwrap();
        assert_eq!(parsed.get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(
            parsed.get("kind").and_then(|k| k.as_str()),
            Some("line_too_long")
        );
        // The connection is closed afterwards: the next read EOFs.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn a_line_exactly_at_the_cap_still_works() {
        let mut server = tiny_limits_server(r#"{"op":"ping"}"#.len());
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        let pong = roundtrip(&mut client, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("ok"), Some(&JsonValue::Bool(true)));
        server.shutdown();
    }

    #[test]
    fn idle_connection_is_dropped_by_the_read_timeout() {
        let mut server = tiny_limits_server(1 << 20);
        let client = TcpStream::connect(server.local_addr()).unwrap();
        // Send nothing. The 300ms server read timeout must fire and the
        // handler must close the connection, observed as EOF client-side.
        // The client-side timeout is only a backstop so a regression fails
        // the test instead of hanging it.
        client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(client);
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => {} // EOF: the server dropped us, as required
            Ok(n) => panic!("unexpected {n}-byte response on an idle connection: {line:?}"),
            Err(e) => panic!("server never dropped the idle connection: {e}"),
        }
        server.shutdown();
    }
}

//! The TCP frontend: plain threads, no async runtime.
//!
//! One accept thread hands each connection to its own handler thread; every
//! handler reads newline-delimited requests, dispatches them through
//! [`crate::wire::handle_line`], and writes one response line per request.
//! Concurrency in the scoring path comes from the engine's batch queue, not
//! from here — handler threads exist only to park on socket reads, so the
//! thread-per-connection model costs one blocked thread per idle client and
//! nothing else.
//!
//! Shutdown is cooperative and deadlock-free: [`Server::shutdown`] flips the
//! stop flag, self-connects once to unblock `accept`, and shuts down every
//! live client socket so handler reads return immediately, then joins all
//! threads. A client can also trigger the same sequence remotely with the
//! wire `shutdown` op.

use crate::engine::Engine;
use crate::wire;
use parking_lot::Mutex;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

struct ServerShared {
    engine: Arc<Engine>,
    stop: AtomicBool,
    addr: SocketAddr,
    /// Live client sockets, kept so shutdown can unblock their readers.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerShared {
    fn begin_shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock every handler parked in a socket read.
        for (_, stream) in self.conns.lock().iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A running NDJSON-over-TCP server wrapping an [`Engine`].
pub struct Server {
    shared: Arc<ServerShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts accepting.
    pub fn start<A: ToSocketAddrs>(engine: Arc<Engine>, addr: A) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(ServerShared {
            engine,
            stop: AtomicBool::new(false),
            addr: listener.local_addr()?,
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("mei-serve-accept".to_owned())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Self { shared, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether a shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Stops accepting, disconnects clients, joins all threads, and shuts
    /// down the engine. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let handlers = std::mem::take(&mut *self.shared.handlers.lock());
        for handle in handlers {
            let _ = handle.join();
        }
        self.shared.engine.shutdown();
    }

    /// Blocks until the accept loop exits (i.e. until a wire `shutdown`
    /// op or a local [`Server::shutdown`] call), then completes the
    /// shutdown sequence. This is what `mei serve` parks on.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    let mut next_id: u64 = 0;
    for incoming in listener.incoming() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match incoming {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_id = next_id;
        next_id += 1;
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => continue,
        };
        shared.conns.lock().push((conn_id, stream));
        let handler_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("mei-serve-conn-{conn_id}"))
            .spawn(move || {
                handle_connection(reader, &handler_shared);
                handler_shared.conns.lock().retain(|(id, _)| *id != conn_id);
            });
        match handle {
            Ok(h) => shared.handlers.lock().push(h),
            Err(_) => shared.conns.lock().retain(|(id, _)| *id != conn_id),
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &ServerShared) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = wire::handle_line(&shared.engine, &line);
        if writer
            .write_all(response.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush())
            .is_err()
        {
            break;
        }
        if shutdown {
            shared.begin_shutdown();
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::snapshot::Snapshot;
    use mei_core::{MultiEmbedModel, WeightPreset};
    use mei_kg::TripleStore;
    use mei_obs::json::parse;
    use mei_obs::JsonValue;
    use rand::{rngs::StdRng, SeedableRng};

    fn server() -> Server {
        let mut rng = StdRng::seed_from_u64(21);
        let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 15, 2, 4, &mut rng);
        let engine =
            Arc::new(Engine::start(Snapshot::with_ids(model, TripleStore::new()), ServeConfig::default()));
        Server::start(engine, "127.0.0.1:0").unwrap()
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> JsonValue {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        parse(response.trim_end()).unwrap()
    }

    #[test]
    fn serves_ping_and_predict_over_tcp() {
        let mut server = server();
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        let pong = roundtrip(&mut client, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("ok"), Some(&JsonValue::Bool(true)));
        let answer = roundtrip(
            &mut client,
            r#"{"op":"predict","side":"tail","anchor":0,"relation":0,"k":2}"#,
        );
        assert_eq!(answer.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(answer.get("results").and_then(|r| r.as_arr()).map(|r| r.len()), Some(2));
        server.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_server() {
        let server = server();
        let addr = server.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        let ack = roundtrip(&mut client, r#"{"op":"shutdown"}"#);
        assert_eq!(ack.get("ok"), Some(&JsonValue::Bool(true)));
        // wait() returns because the accept loop exits.
        server.wait();
        // The port no longer answers.
        assert!(TcpStream::connect(addr).is_err() || {
            // A connect may still succeed momentarily on some kernels if
            // the backlog drains late; a subsequent read must then EOF.
            let s = TcpStream::connect(addr);
            match s {
                Ok(sock) => {
                    let mut r = BufReader::new(sock);
                    let mut line = String::new();
                    r.read_line(&mut line).map(|n| n == 0).unwrap_or(true)
                }
                Err(_) => true,
            }
        });
    }

    #[test]
    fn local_shutdown_is_idempotent_and_unblocks_clients() {
        let mut server = server();
        let _idle = TcpStream::connect(server.local_addr()).unwrap();
        server.shutdown();
        server.shutdown();
        assert!(server.is_shutting_down());
    }
}

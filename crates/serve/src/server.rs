//! The TCP frontend: one epoll event loop, no async runtime.
//!
//! A single loop thread owns every connection: nonblocking accept, a
//! per-connection read/write state machine over the bounded line framing
//! in [`crate::frame`], and epoll-deadline timeouts. Concurrency in the
//! scoring path still comes from the engine's batch queue — a predict
//! that misses the cache is *submitted* ([`Engine::submit`]) rather than
//! blocked on, parking a ticket on the connection; when a worker answers,
//! the engine's completion waker pushes the connection id onto the
//! loop's completion list and kicks an eventfd, and the loop writes the
//! response on its next wake. One connection therefore costs a few
//! hundred bytes of state instead of a parked thread, and connection
//! churn leaves nothing behind to reap (the `JoinHandle`-accumulation
//! leak of the thread-per-connection frontend is gone structurally).
//!
//! The loop never blocks on anything but `epoll_wait`:
//!
//! * timeouts are deadlines on a min-heap (lazy deletion; the earliest
//!   live deadline bounds the `epoll_wait` timeout) — an idle or stalled
//!   client is dropped without a dedicated thread noticing;
//! * a wire `swap` runs on a short-lived task thread (a million-entity
//!   model load must not freeze every other connection) and completes
//!   through the same waker path as predicts;
//! * persistent accept errors (e.g. `EMFILE`) deregister the listener
//!   and re-arm it after a bounded exponential backoff, counted in
//!   `serve/accept_errors` — the busy-spin of the old accept loop is
//!   structurally impossible.
//!
//! Shutdown is cooperative: [`Server::shutdown`] (or the wire `shutdown`
//! op) flips the stop flag and wakes the loop, which closes every socket
//! and exits; the engine is shut down after the loop is joined, failing
//! any still-parked tickets with `ShuttingDown`.
//!
//! The frontend trusts nobody ([`ServerConfig`]): request lines are
//! framed through a hard byte cap (a client streaming bytes with no
//! newline is answered with a structured `line_too_long` error and
//! disconnected the moment it crosses the cap), reads reset a deadline
//! that evicts idle and slow-loris connections, and pending output above
//! a high-water mark pauses reads so a client that pipelines requests
//! without reading responses cannot balloon the outbuf.

use crate::engine::{Engine, Submission, Ticket};
use crate::frame::{Frame, LineFramer, Pump};
use crate::poll::{Poller, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};
use crate::wire::{self, Dispatch, PredictCall};
use mei_obs::{Counter, Gauge};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection I/O limits for [`Server::start_with`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// How long a connection may sit without delivering bytes before it
    /// is dropped (every received byte resets the clock). `None` waits
    /// forever (the pre-hardening behavior; not recommended).
    pub read_timeout: Option<Duration>,
    /// How long a pending response may sit unflushed against a stalled
    /// client before the connection is dropped.
    pub write_timeout: Option<Duration>,
    /// Longest accepted request line in bytes; longer lines get a
    /// `line_too_long` wire error and the connection is closed.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            max_line_bytes: 1 << 20, // 1 MiB
        }
    }
}

/// The accept side of the listener, as the event loop sees it: a
/// nonblocking accept plus the fd to register for accept readiness.
///
/// `TcpListener` is the production implementation; tests inject failing
/// acceptors to pin the backoff behavior under persistent accept errors
/// (`EMFILE` and friends) without actually exhausting fds.
pub trait Acceptor: Send + 'static {
    /// Accepts one pending connection. Must be nonblocking: return
    /// `WouldBlock` when the backlog is empty.
    fn accept(&self) -> io::Result<TcpStream>;
    /// The bound address.
    fn local_addr(&self) -> io::Result<SocketAddr>;
    /// The fd to register with epoll for accept readiness.
    fn raw_fd(&self) -> RawFd;
}

impl Acceptor for TcpListener {
    fn accept(&self) -> io::Result<TcpStream> {
        TcpListener::accept(self).map(|(stream, _)| stream)
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        TcpListener::local_addr(self)
    }

    fn raw_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

/// Most connections accepted per listener wake (level-triggered epoll
/// re-reports the rest, so this only bounds time-per-wake).
const ACCEPT_BATCH: usize = 256;
/// Most bytes pumped from one connection per wake, for the same reason.
const READ_BUDGET: usize = 256 * 1024;
/// Pending-output high-water mark: above this, the connection's reads
/// are paused until the client drains responses.
const OUT_HIGH_WATER: usize = 256 * 1024;
/// Most events drained per `epoll_wait`.
const MAX_EVENTS: usize = 1024;
/// First accept-error backoff; doubles per consecutive error.
const ACCEPT_BACKOFF_BASE: Duration = Duration::from_millis(1);
/// Accept-error backoff ceiling.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(250);

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

struct ServerShared {
    engine: Arc<Engine>,
    config: ServerConfig,
    stop: AtomicBool,
    addr: SocketAddr,
    /// Wakes the loop out of `epoll_wait` (shutdown, completions).
    waker: WakeFd,
    /// Connection ids whose in-flight work (predict ticket or swap task)
    /// has completed since the loop last looked.
    completions: Mutex<Vec<u64>>,
    conn_gauge: Arc<Gauge>,
    accepted: Arc<Counter>,
    accept_errors: Arc<Counter>,
    epoll_wakes: Arc<Counter>,
}

impl ServerShared {
    fn begin_shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.waker.wake();
    }

    fn complete(&self, conn_id: u64) {
        self.completions.lock().push(conn_id);
        self.waker.wake();
    }
}

/// A running NDJSON-over-TCP server wrapping an [`Engine`].
pub struct Server {
    shared: Arc<ServerShared>,
    loop_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) and starts accepting
    /// with the default [`ServerConfig`] limits.
    pub fn start<A: ToSocketAddrs>(engine: Arc<Engine>, addr: A) -> io::Result<Self> {
        Self::start_with(engine, addr, ServerConfig::default())
    }

    /// [`Server::start`] with explicit per-connection limits.
    pub fn start_with<A: ToSocketAddrs>(
        engine: Arc<Engine>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Self::start_with_acceptor(engine, listener, config)
    }

    /// [`Server::start_with`] over any [`Acceptor`] — the seam the
    /// accept-error fault-injection tests use. The acceptor must already
    /// be nonblocking.
    pub fn start_with_acceptor<A: Acceptor>(
        engine: Arc<Engine>,
        acceptor: A,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let addr = acceptor.local_addr()?;
        let poller = Poller::new()?;
        let waker = WakeFd::new()?;
        let metrics = engine.metrics();
        let shared = Arc::new(ServerShared {
            conn_gauge: metrics.gauge("serve/connections"),
            accepted: metrics.counter("serve/accepted"),
            accept_errors: metrics.counter("serve/accept_errors"),
            epoll_wakes: metrics.counter("serve/epoll_wakes"),
            engine,
            config,
            stop: AtomicBool::new(false),
            addr,
            waker,
            completions: Mutex::new(Vec::new()),
        });
        poller.add(acceptor.raw_fd(), TOKEN_LISTENER, EPOLLIN)?;
        poller.add(shared.waker.raw_fd(), TOKEN_WAKER, EPOLLIN)?;
        let loop_shared = Arc::clone(&shared);
        let loop_thread = std::thread::Builder::new()
            .name("mei-serve-loop".to_owned())
            .spawn(move || EventLoop::new(acceptor, poller, loop_shared).run())?;
        Ok(Self { shared, loop_thread: Some(loop_thread) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Whether a shutdown has been requested (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Stops accepting, disconnects clients, joins the event loop, and
    /// shuts down the engine (failing any still-parked predicts with
    /// `ShuttingDown`). Idempotent. Joining before the engine shutdown is
    /// safe because the loop never blocks inside `predict` — parked
    /// requests are tickets, not threads.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        self.shared.engine.shutdown();
    }

    /// Blocks until the event loop exits (i.e. until a wire `shutdown`
    /// op or a local [`Server::shutdown`] call), then completes the
    /// shutdown sequence. This is what `mei serve` parks on.
    pub fn wait(mut self) {
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        self.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Work a connection is waiting on before it can frame its next request.
enum InFlight {
    /// A predict parked on the engine's batch queue, plus the resolved
    /// call context its response will be rendered from.
    Predict(Ticket, PredictCall),
    /// An off-loop task (wire `swap`); the thread deposits the response
    /// line here and signals completion.
    Task(Arc<Mutex<Option<String>>>),
}

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    framer: LineFramer,
    out: Vec<u8>,
    out_pos: usize,
    inflight: Option<InFlight>,
    /// The deadline currently armed for this connection, if any. Heap
    /// entries not matching this exact instant are stale and skipped.
    deadline: Option<Instant>,
    /// Interest mask currently registered with epoll.
    interest: u32,
    close_after_flush: bool,
    saw_eof: bool,
}

impl Conn {
    fn out_pending(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

enum FlushState {
    Flushed,
    Pending,
    Dead,
}

struct EventLoop<A: Acceptor> {
    acceptor: A,
    poller: Poller,
    shared: Arc<ServerShared>,
    conns: HashMap<u64, Conn>,
    next_conn_id: u64,
    /// Min-heap of `(deadline, conn_id)` with lazy deletion.
    timers: BinaryHeap<Reverse<(Instant, u64)>>,
    /// When accepting is paused after errors, the instant to resume at.
    accept_resume: Option<Instant>,
    consecutive_accept_errors: u32,
    listener_registered: bool,
    events: Vec<crate::poll::EpollEvent>,
}

impl<A: Acceptor> EventLoop<A> {
    fn new(acceptor: A, poller: Poller, shared: Arc<ServerShared>) -> Self {
        Self {
            acceptor,
            poller,
            shared,
            conns: HashMap::new(),
            next_conn_id: TOKEN_FIRST_CONN,
            timers: BinaryHeap::new(),
            accept_resume: None,
            consecutive_accept_errors: 0,
            listener_registered: true,
            events: Vec::new(),
        }
    }

    fn run(mut self) {
        loop {
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            let timeout = self.next_timeout_ms();
            let n = match self.poller.wait(&mut self.events, timeout, MAX_EVENTS) {
                Ok(n) => n,
                Err(_) => break, // epoll itself failed; nothing to serve with
            };
            self.shared.epoll_wakes.inc();
            let events = std::mem::take(&mut self.events);
            for ev in &events[..n] {
                match ev.token {
                    TOKEN_LISTENER => self.do_accept(),
                    TOKEN_WAKER => self.shared.waker.drain(),
                    id => self.on_conn_event(id, ev.events),
                }
                if self.shared.stop.load(Ordering::Acquire) {
                    break;
                }
            }
            self.events = events;
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            self.drain_completions();
            self.fire_timers();
        }
        // Close everything; parked tickets are failed by the engine
        // shutdown that follows the loop join.
        for (_, conn) in self.conns.drain() {
            self.poller.del(conn.stream.as_raw_fd());
        }
        self.shared.conn_gauge.set(0.0);
    }

    /// Milliseconds until the earliest live deadline (conn deadlines and
    /// the accept-backoff resume), or -1 for "sleep until woken".
    fn next_timeout_ms(&mut self) -> i32 {
        let mut next: Option<Instant> = self.accept_resume;
        while let Some(Reverse((t, id))) = self.timers.peek().copied() {
            match self.conns.get(&id) {
                Some(c) if c.deadline == Some(t) => {
                    next = Some(next.map_or(t, |n| n.min(t)));
                    break;
                }
                _ => {
                    self.timers.pop(); // stale entry
                }
            }
        }
        match next {
            None => -1,
            Some(t) => {
                let now = Instant::now();
                if t <= now {
                    0
                } else {
                    // +1 so we wake at-or-after the deadline, not just before.
                    (t - now).as_millis().min(i32::MAX as u128 - 1) as i32 + 1
                }
            }
        }
    }

    fn fire_timers(&mut self) {
        let now = Instant::now();
        if let Some(resume) = self.accept_resume {
            if resume <= now {
                self.accept_resume = None;
                if !self.listener_registered
                    && self
                        .poller
                        .add(self.acceptor.raw_fd(), TOKEN_LISTENER, EPOLLIN)
                        .is_ok()
                {
                    self.listener_registered = true;
                }
                // Drain whatever queued up while accepting was paused.
                self.do_accept();
            }
        }
        while let Some(Reverse((t, id))) = self.timers.peek().copied() {
            if t > now {
                break;
            }
            self.timers.pop();
            let live = matches!(self.conns.get(&id), Some(c) if c.deadline == Some(t));
            if live {
                // Timed out: same outcome as the blocking frontend's
                // read/write timeout — drop the connection.
                self.close_conn(id);
            }
        }
    }

    fn do_accept(&mut self) {
        for _ in 0..ACCEPT_BATCH {
            match self.acceptor.accept() {
                Ok(stream) => {
                    self.consecutive_accept_errors = 0;
                    self.register_conn(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Persistent accept errors (EMFILE, ENFILE, …) must
                    // not busy-spin the loop: count, deregister the
                    // listener, and retry after a bounded backoff.
                    self.shared.accept_errors.inc();
                    self.consecutive_accept_errors = self.consecutive_accept_errors.saturating_add(1);
                    let shift = self.consecutive_accept_errors.saturating_sub(1).min(16);
                    let delay = ACCEPT_BACKOFF_BASE
                        .saturating_mul(1u32 << shift)
                        .min(ACCEPT_BACKOFF_MAX);
                    self.accept_resume = Some(Instant::now() + delay);
                    if self.listener_registered {
                        self.poller.del(self.acceptor.raw_fd());
                        self.listener_registered = false;
                    }
                    break;
                }
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        let interest = EPOLLIN | EPOLLRDHUP;
        if self.poller.add(stream.as_raw_fd(), id, interest).is_err() {
            return;
        }
        let mut conn = Conn {
            stream,
            framer: LineFramer::new(self.shared.config.max_line_bytes),
            out: Vec::new(),
            out_pos: 0,
            inflight: None,
            deadline: None,
            interest,
            close_after_flush: false,
            saw_eof: false,
        };
        if let Some(t) = self.shared.config.read_timeout {
            let deadline = Instant::now() + t;
            conn.deadline = Some(deadline);
            self.timers.push(Reverse((deadline, id)));
        }
        self.conns.insert(id, conn);
        self.shared.accepted.inc();
        self.shared.conn_gauge.set(self.conns.len() as f64);
    }

    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            self.poller.del(conn.stream.as_raw_fd());
            self.shared.conn_gauge.set(self.conns.len() as f64);
        }
    }

    fn on_conn_event(&mut self, id: u64, mask: u32) {
        if !self.conns.contains_key(&id) {
            return; // stale event for a connection closed this wake
        }
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(id);
            return;
        }
        if mask & (EPOLLIN | EPOLLRDHUP) != 0 && !self.on_readable(id) {
            return;
        }
        // EPOLLOUT needs no dedicated handler: process() ends in
        // update_io(), which flushes whatever is pending.
        self.process(id);
    }

    /// Pumps available bytes into the framer. Returns false if the
    /// connection died (and was closed) in the process.
    fn on_readable(&mut self, id: u64) -> bool {
        let conn = match self.conns.get_mut(&id) {
            Some(c) => c,
            None => return false,
        };
        if conn.inflight.is_some() || conn.saw_eof {
            // Not reading right now (request in flight, or stream already
            // ended); interest should already exclude EPOLLIN.
            return true;
        }
        match pump_stream(conn) {
            Pump::Drained { .. } => true,
            Pump::Eof { .. } => {
                conn.saw_eof = true;
                // `BufRead::lines` semantics: a final unterminated line is
                // still a request. Terminate it so the framer yields it;
                // a spurious blank line is skipped by process().
                if conn.framer.buffered() > 0 {
                    conn.framer.push(b"\n");
                }
                true
            }
            Pump::Err(_) => {
                self.close_conn(id);
                false
            }
        }
    }

    /// Frames and dispatches buffered request lines until the connection
    /// parks (in-flight work), runs out of complete lines, backs up on
    /// output, or dies. Ends by reconciling flush/interest/deadline state.
    fn process(&mut self, id: u64) {
        loop {
            let conn = match self.conns.get_mut(&id) {
                Some(c) => c,
                None => return,
            };
            if conn.inflight.is_some() || conn.out_pending() > OUT_HIGH_WATER {
                break;
            }
            match conn.framer.next_line() {
                Frame::NeedMore => {
                    if conn.saw_eof {
                        conn.close_after_flush = true;
                    }
                    break;
                }
                Frame::TooLong => {
                    // Tell the client why, then drop the connection;
                    // resyncing on a stream that already violated the
                    // framing contract is not worth carrying state for.
                    let response = wire::oversize_line_response(self.shared.config.max_line_bytes);
                    queue_response(conn, &response);
                    conn.close_after_flush = true;
                    break;
                }
                Frame::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match wire::dispatch_line(&self.shared.engine, &line) {
                        Dispatch::Respond(response, stop) => {
                            queue_response(conn, &response);
                            if stop {
                                self.flush_final(id);
                                self.shared.begin_shutdown();
                                return;
                            }
                        }
                        Dispatch::Predict(call) => {
                            let waker = {
                                let shared = Arc::clone(&self.shared);
                                Box::new(move || shared.complete(id))
                            };
                            match self.shared.engine.submit(
                                call.side,
                                call.anchor,
                                call.relation,
                                call.k,
                                Some(waker),
                            ) {
                                Submission::Ready(outcome) => {
                                    let response = wire::predict_line(&call, outcome);
                                    queue_response(conn, &response);
                                }
                                Submission::Parked(ticket) => {
                                    conn.inflight = Some(InFlight::Predict(ticket, call));
                                    break;
                                }
                            }
                        }
                        Dispatch::Swap { model_file } => {
                            // A swap loads (maps) a whole model; run it off
                            // the loop so every other connection keeps
                            // being served, and complete it like a predict.
                            let slot = Arc::new(Mutex::new(None));
                            let task_slot = Arc::clone(&slot);
                            let shared = Arc::clone(&self.shared);
                            let spawned = std::thread::Builder::new()
                                .name("mei-serve-swap".to_owned())
                                .spawn(move || {
                                    let response = wire::swap_line(&shared.engine, &model_file);
                                    *task_slot.lock() = Some(response);
                                    shared.complete(id);
                                });
                            match spawned {
                                Ok(_) => {
                                    let conn = self.conns.get_mut(&id).expect("conn vanished");
                                    conn.inflight = Some(InFlight::Task(slot));
                                    break;
                                }
                                Err(_) => {
                                    let conn = self.conns.get_mut(&id).expect("conn vanished");
                                    queue_response(
                                        conn,
                                        &wire::error_line("unavailable", "cannot spawn swap task"),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        self.update_io(id);
    }

    /// Resolves completed in-flight work signalled through the waker path.
    fn drain_completions(&mut self) {
        let ids: Vec<u64> = std::mem::take(&mut *self.shared.completions.lock());
        for id in ids {
            let conn = match self.conns.get_mut(&id) {
                Some(c) => c,
                None => continue, // completed after the client vanished
            };
            let response = match conn.inflight.take() {
                None => continue,
                Some(InFlight::Predict(ticket, call)) => {
                    match self.shared.engine.try_finish(ticket) {
                        Ok(outcome) => wire::predict_line(&call, outcome),
                        Err(ticket) => {
                            // Spurious wake; re-park.
                            conn.inflight = Some(InFlight::Predict(ticket, call));
                            continue;
                        }
                    }
                }
                Some(InFlight::Task(slot)) => {
                    let ready = slot.lock().take();
                    match ready {
                        Some(response) => response,
                        None => {
                            conn.inflight = Some(InFlight::Task(slot));
                            continue;
                        }
                    }
                }
            };
            queue_response(conn, &response);
            // The connection may have more pipelined requests buffered.
            self.process(id);
        }
    }

    /// Reconciles a connection's epoll interest, deadline, and pending
    /// output after any activity, closing it if its work is done.
    fn update_io(&mut self, id: u64) {
        let conn = match self.conns.get_mut(&id) {
            Some(c) => c,
            None => return,
        };
        if conn.out_pending() > 0 {
            match flush_conn(conn) {
                FlushState::Dead => {
                    self.close_conn(id);
                    return;
                }
                FlushState::Flushed | FlushState::Pending => {}
            }
        }
        let conn = self.conns.get_mut(&id).expect("conn vanished");
        let out_pending = conn.out_pending() > 0;
        if !out_pending && conn.close_after_flush {
            self.close_conn(id);
            return;
        }
        if !out_pending && conn.saw_eof && conn.inflight.is_none() {
            // Stream ended and every buffered request was answered.
            self.close_conn(id);
            return;
        }
        let mut interest = 0u32;
        let reading =
            conn.inflight.is_none() && !conn.saw_eof && conn.out_pending() <= OUT_HIGH_WATER;
        if reading {
            interest |= EPOLLIN | EPOLLRDHUP;
        }
        if out_pending {
            interest |= EPOLLOUT;
        }
        if interest != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, id, interest).is_err() {
                self.close_conn(id);
                return;
            }
            let conn = self.conns.get_mut(&id).expect("conn vanished");
            conn.interest = interest;
        }
        let conn = self.conns.get_mut(&id).expect("conn vanished");
        let deadline = if out_pending {
            self.shared.config.write_timeout.map(|t| Instant::now() + t)
        } else if conn.inflight.is_some() {
            // The engine owns the wait; no I/O deadline while parked.
            None
        } else {
            self.shared.config.read_timeout.map(|t| Instant::now() + t)
        };
        conn.deadline = deadline;
        if let Some(t) = deadline {
            self.timers.push(Reverse((t, id)));
        }
    }

    /// Best-effort synchronous flush of the shutdown acknowledgement:
    /// the loop is about to exit, so briefly reverting this one socket
    /// to blocking writes (bounded by the write timeout) is simpler and
    /// safer than racing the teardown.
    fn flush_final(&mut self, id: u64) {
        if let Some(mut conn) = self.conns.remove(&id) {
            self.poller.del(conn.stream.as_raw_fd());
            self.shared.conn_gauge.set(self.conns.len() as f64);
            let _ = conn.stream.set_nonblocking(false);
            let budget = self.shared.config.write_timeout.unwrap_or(Duration::from_secs(1));
            let _ = conn.stream.set_write_timeout(Some(budget));
            let pending = conn.out[conn.out_pos..].to_vec();
            let _ = conn.stream.write_all(&pending).and_then(|_| conn.stream.flush());
        }
    }
}

fn pump_stream(conn: &mut Conn) -> Pump {
    crate::frame::pump(&mut (&conn.stream), &mut conn.framer, READ_BUDGET)
}

fn queue_response(conn: &mut Conn, line: &str) {
    conn.out.extend_from_slice(line.as_bytes());
    conn.out.push(b'\n');
}

fn flush_conn(conn: &mut Conn) -> FlushState {
    while conn.out_pos < conn.out.len() {
        match (&conn.stream).write(&conn.out[conn.out_pos..]) {
            Ok(0) => return FlushState::Dead,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                // Reclaim flushed prefix space before parking the rest.
                if conn.out_pos > 4096 {
                    conn.out.drain(..conn.out_pos);
                    conn.out_pos = 0;
                }
                return FlushState::Pending;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return FlushState::Dead,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    FlushState::Flushed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::snapshot::Snapshot;
    use mei_core::{MultiEmbedModel, WeightPreset};
    use mei_kg::TripleStore;
    use mei_obs::json::parse;
    use mei_obs::JsonValue;
    use rand::{rngs::StdRng, SeedableRng};
    use std::io::{BufRead, BufReader};

    fn server() -> Server {
        let mut rng = StdRng::seed_from_u64(21);
        let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 15, 2, 4, &mut rng);
        let engine =
            Arc::new(Engine::start(Snapshot::with_ids(model, TripleStore::new()), ServeConfig::default()));
        Server::start(engine, "127.0.0.1:0").unwrap()
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> JsonValue {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        parse(response.trim_end()).unwrap()
    }

    #[test]
    fn serves_ping_and_predict_over_tcp() {
        let mut server = server();
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        let pong = roundtrip(&mut client, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("ok"), Some(&JsonValue::Bool(true)));
        let answer = roundtrip(
            &mut client,
            r#"{"op":"predict","side":"tail","anchor":0,"relation":0,"k":2}"#,
        );
        assert_eq!(answer.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(answer.get("results").and_then(|r| r.as_arr()).map(|r| r.len()), Some(2));
        server.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_server() {
        let server = server();
        let addr = server.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        let ack = roundtrip(&mut client, r#"{"op":"shutdown"}"#);
        assert_eq!(ack.get("ok"), Some(&JsonValue::Bool(true)));
        // wait() returns because the event loop exits.
        server.wait();
        // The port no longer answers.
        assert!(TcpStream::connect(addr).is_err() || {
            // A connect may still succeed momentarily on some kernels if
            // the backlog drains late; a subsequent read must then EOF.
            let s = TcpStream::connect(addr);
            match s {
                Ok(sock) => {
                    let mut r = BufReader::new(sock);
                    let mut line = String::new();
                    r.read_line(&mut line).map(|n| n == 0).unwrap_or(true)
                }
                Err(_) => true,
            }
        });
    }

    #[test]
    fn local_shutdown_is_idempotent_and_unblocks_clients() {
        let mut server = server();
        let _idle = TcpStream::connect(server.local_addr()).unwrap();
        server.shutdown();
        server.shutdown();
        assert!(server.is_shutting_down());
    }

    fn tiny_limits_server(max_line_bytes: usize) -> Server {
        let mut rng = StdRng::seed_from_u64(21);
        let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 15, 2, 4, &mut rng);
        let engine =
            Arc::new(Engine::start(Snapshot::with_ids(model, TripleStore::new()), ServeConfig::default()));
        let config = ServerConfig {
            read_timeout: Some(Duration::from_millis(300)),
            write_timeout: Some(Duration::from_millis(300)),
            max_line_bytes,
        };
        Server::start_with(engine, "127.0.0.1:0", config).unwrap()
    }

    #[test]
    fn oversize_request_line_gets_a_structured_error_then_disconnect() {
        let mut server = tiny_limits_server(64);
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        // 200 bytes, no newline needed for the cap to trip.
        client.write_all(&[b'x'; 200]).unwrap();
        client.flush().unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        let parsed = parse(response.trim_end()).unwrap();
        assert_eq!(parsed.get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(
            parsed.get("kind").and_then(|k| k.as_str()),
            Some("line_too_long")
        );
        // The connection is closed afterwards: the next read EOFs.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0);
        server.shutdown();
    }

    #[test]
    fn a_line_exactly_at_the_cap_still_works() {
        let mut server = tiny_limits_server(r#"{"op":"ping"}"#.len());
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        let pong = roundtrip(&mut client, r#"{"op":"ping"}"#);
        assert_eq!(pong.get("ok"), Some(&JsonValue::Bool(true)));
        server.shutdown();
    }

    #[test]
    fn idle_connection_is_dropped_by_the_read_timeout() {
        let mut server = tiny_limits_server(1 << 20);
        let client = TcpStream::connect(server.local_addr()).unwrap();
        // Send nothing. The 300ms server read deadline must fire and the
        // loop must close the connection, observed as EOF client-side.
        // The client-side timeout is only a backstop so a regression fails
        // the test instead of hanging it.
        client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(client);
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => {} // EOF: the server dropped us, as required
            Ok(n) => panic!("unexpected {n}-byte response on an idle connection: {line:?}"),
            Err(e) => panic!("server never dropped the idle connection: {e}"),
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let mut server = server();
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        // One write carrying several requests (plus a blank line, which
        // must be skipped, not answered).
        let mut batch = String::new();
        for i in 0..5 {
            batch.push_str(&format!(
                "{{\"op\":\"predict\",\"side\":\"tail\",\"anchor\":{i},\"relation\":0,\"k\":2,\"id\":{i}}}\n"
            ));
        }
        batch.push('\n');
        batch.push_str("{\"op\":\"ping\"}\n");
        client.write_all(batch.as_bytes()).unwrap();
        let mut reader = BufReader::new(client);
        for i in 0..5 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let v = parse(line.trim_end()).unwrap();
            assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
            assert_eq!(v.get("id").and_then(|x| x.as_usize()), Some(i), "responses must be FIFO");
        }
        let mut pong = String::new();
        reader.read_line(&mut pong).unwrap();
        assert_eq!(parse(pong.trim_end()).unwrap().get("ok"), Some(&JsonValue::Bool(true)));
        server.shutdown();
    }

    #[test]
    fn trailing_line_without_newline_is_served_before_close() {
        let mut server = server();
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        client.write_all(br#"{"op":"ping"}"#).unwrap(); // no newline
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reader = BufReader::new(client);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(parse(line.trim_end()).unwrap().get("ok"), Some(&JsonValue::Bool(true)));
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "connection must close after EOF");
        server.shutdown();
    }
}

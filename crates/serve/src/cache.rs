//! Sharded, epoch-tagged LRU cache of top-k answers.
//!
//! Keys are the full request identity `(side, anchor, relation, k)`; values
//! are the finished answer lists behind `Arc` so hits are returned without
//! copying. Every entry is tagged with the snapshot **epoch** it was
//! computed under, and [`ShardedLruCache::get`] only returns an entry whose
//! tag matches the epoch the caller loaded for this request — a snapshot
//! swap therefore invalidates the whole cache *lazily*: stale entries stop
//! being servable the instant the epoch bumps and are evicted on first
//! touch, with no stop-the-world sweep. An insert racing a swap can at
//! worst park an already-stale entry in a slot; it can never be served.
//!
//! Sharding by key hash keeps lock contention bounded: each shard is an
//! independent `Mutex<HashMap>` with its own LRU clock, so concurrent
//! handler threads touching different keys rarely collide.

use mei_eval::BlockQuery;
use mei_kg::EntityId;
use parking_lot::Mutex;
use std::collections::hash_map::{DefaultHasher, Entry as MapEntry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A finished answer: `(entity, score)` pairs, best first.
pub type CachedAnswer = Arc<Vec<(EntityId, f32)>>;

/// The identity of a cacheable request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The scoring query `(side, anchor, relation)`.
    pub query: BlockQuery,
    /// How many results were requested.
    pub k: usize,
}

struct Entry {
    epoch: u64,
    tick: u64,
    value: CachedAnswer,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
    capacity: usize,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn evict_lru(&mut self) {
        if let Some(key) =
            self.map.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| *k)
        {
            self.map.remove(&key);
        }
    }
}

/// Hit/miss counters, readable without locking any shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (same epoch).
    pub hits: u64,
    /// Lookups that missed (absent, or present but from an older epoch).
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cache: `shards` independent LRU maps of `capacity_per_shard`
/// entries each.
pub struct ShardedLruCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedLruCache {
    /// Builds a cache with `shards` shards of `capacity_per_shard` entries
    /// each. Both are clamped to at least 1.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        let shards = shards.max(1);
        let capacity = capacity_per_shard.max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::with_capacity(capacity),
                        clock: 0,
                        capacity,
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Looks up `key`, returning the answer only if it was computed under
    /// exactly `epoch`. An entry from any other epoch is evicted on the
    /// spot and counted as a miss.
    pub fn get(&self, key: &CacheKey, epoch: u64) -> Option<CachedAnswer> {
        let mut shard = self.shard_for(key).lock();
        let tick = shard.touch();
        match shard.map.entry(*key) {
            MapEntry::Occupied(mut slot) => {
                if slot.get().epoch == epoch {
                    slot.get_mut().tick = tick;
                    let value = Arc::clone(&slot.get().value);
                    drop(shard);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(value)
                } else {
                    slot.remove();
                    drop(shard);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
            MapEntry::Vacant(_) => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an answer computed under `epoch`, evicting the shard's
    /// least-recently-used entry if it is full.
    pub fn insert(&self, key: CacheKey, epoch: u64, value: CachedAnswer) {
        let mut shard = self.shard_for(&key).lock();
        let tick = shard.touch();
        if !shard.map.contains_key(&key) && shard.map.len() >= shard.capacity {
            shard.evict_lru();
        }
        shard.map.insert(key, Entry { epoch, tick, value });
    }

    /// Total entries across all shards (including not-yet-evicted stale
    /// ones; they are unservable regardless).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mei_kg::{EntityId, RelationId};

    fn key(anchor: u32, k: usize) -> CacheKey {
        CacheKey { query: BlockQuery::tails(EntityId(anchor), RelationId(0)), k }
    }

    fn answer(id: u32) -> CachedAnswer {
        Arc::new(vec![(EntityId(id), 1.0)])
    }

    #[test]
    fn hit_only_on_matching_epoch() {
        let cache = ShardedLruCache::new(4, 8);
        cache.insert(key(1, 5), 0, answer(7));
        assert_eq!(cache.get(&key(1, 5), 0).unwrap()[0].0, EntityId(7));
        // Epoch bump: the same key misses and the stale entry is evicted.
        assert!(cache.get(&key(1, 5), 1).is_none());
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn k_is_part_of_the_key() {
        let cache = ShardedLruCache::new(1, 8);
        cache.insert(key(1, 5), 0, answer(7));
        assert!(cache.get(&key(1, 6), 0).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ShardedLruCache::new(1, 2);
        cache.insert(key(1, 1), 0, answer(1));
        cache.insert(key(2, 1), 0, answer(2));
        // Touch key 1 so key 2 is the LRU.
        assert!(cache.get(&key(1, 1), 0).is_some());
        cache.insert(key(3, 1), 0, answer(3));
        assert!(cache.get(&key(2, 1), 0).is_none());
        assert!(cache.get(&key(1, 1), 0).is_some());
        assert!(cache.get(&key(3, 1), 0).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let cache = ShardedLruCache::new(1, 2);
        cache.insert(key(1, 1), 0, answer(1));
        cache.insert(key(2, 1), 0, answer(2));
        cache.insert(key(1, 1), 1, answer(9));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1, 1), 1).unwrap()[0].0, EntityId(9));
        assert!(cache.get(&key(2, 1), 0).is_some());
    }
}

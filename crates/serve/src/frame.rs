//! Incremental bounded line framing for nonblocking sockets.
//!
//! The thread-per-connection server framed requests with a blocking
//! `read_bounded_line` over `BufReader`. The event loop receives bytes
//! whenever the socket is readable, so framing becomes a small state
//! machine: bytes go in via [`LineFramer::push`], complete lines come
//! out via [`LineFramer::next_line`]. The cap semantics are identical
//! to the blocking reader and are pinned by the PR-4 hardening tests:
//!
//! - a line whose content (excluding the `\n`) is exactly `max_bytes`
//!   long is still served;
//! - the moment more than `max_bytes` of content accumulate without a
//!   terminating newline, the line is oversize (`TooLong`) — the caller
//!   answers `line_too_long` and drops the connection without waiting
//!   for the newline, which is what bounds slow-loris senders.

use std::io::{self, Read};

/// What the framer has for the caller right now.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete request line (newline stripped, lossy UTF-8).
    Line(String),
    /// More than `max_bytes` of content accumulated with no newline.
    /// The framer is dead after this; the connection must be dropped.
    TooLong,
    /// No complete line buffered; wait for more bytes.
    NeedMore,
}

/// Splits a byte stream into newline-terminated lines with a hard cap
/// on line length. One framer per connection.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for a newline (avoids rescanning
    /// the prefix on every push of a trickling sender).
    scanned: usize,
    max_bytes: usize,
    dead: bool,
}

impl LineFramer {
    /// A framer enforcing `max_bytes` of content per line.
    pub fn new(max_bytes: usize) -> Self {
        Self { buf: Vec::new(), scanned: 0, max_bytes, dead: false }
    }

    /// Feeds bytes received from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        if !self.dead {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Number of buffered, not-yet-framed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete line, or reports why one isn't available.
    pub fn next_line(&mut self) -> Frame {
        if self.dead {
            return Frame::TooLong;
        }
        if let Some(rel) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            let pos = self.scanned + rel;
            if pos > self.max_bytes {
                self.dead = true;
                return Frame::TooLong;
            }
            let line = String::from_utf8_lossy(&self.buf[..pos]).into_owned();
            self.buf.drain(..=pos);
            self.scanned = 0;
            return Frame::Line(line);
        }
        self.scanned = self.buf.len();
        if self.buf.len() > self.max_bytes {
            self.dead = true;
            return Frame::TooLong;
        }
        Frame::NeedMore
    }

    /// The final unterminated line at EOF, if any. `BufRead::lines`
    /// yields a trailing line with no newline, and the blocking server
    /// served it before closing — the event loop preserves that.
    pub fn take_trailing(&mut self) -> Option<String> {
        if self.dead || self.buf.is_empty() {
            return None;
        }
        let line = String::from_utf8_lossy(&self.buf).into_owned();
        self.buf.clear();
        self.scanned = 0;
        Some(line)
    }
}

/// Outcome of pumping a readable socket into a framer.
#[derive(Debug)]
pub enum Pump {
    /// Drained to `WouldBlock` (or hit the per-wake byte budget).
    Drained {
        /// Bytes that arrived this pump.
        bytes: usize,
    },
    /// Peer closed its writing half.
    Eof {
        /// Bytes that arrived before EOF.
        bytes: usize,
    },
    /// Hard I/O error; the connection is unusable.
    Err(io::Error),
}

/// Reads everything currently available from `src` into `framer`,
/// retrying on `EINTR` (the blocking reader's failure to do so was a
/// drop-the-connection bug) and stopping at `WouldBlock`, EOF, or a
/// `budget` of bytes (so one firehose connection cannot starve the
/// rest of the loop — level-triggered epoll re-reports the remainder).
pub fn pump<R: Read>(src: &mut R, framer: &mut LineFramer, budget: usize) -> Pump {
    let mut chunk = [0u8; 8192];
    let mut total = 0usize;
    loop {
        if total >= budget {
            return Pump::Drained { bytes: total };
        }
        match src.read(&mut chunk) {
            Ok(0) => return Pump::Eof { bytes: total },
            Ok(n) => {
                framer.push(&chunk[..n]);
                total += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                return Pump::Drained { bytes: total };
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Pump::Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_split_across_pushes() {
        let mut f = LineFramer::new(64);
        f.push(b"{\"op\":");
        assert_eq!(f.next_line(), Frame::NeedMore);
        f.push(b"\"ping\"}\n{\"op\":\"stats\"}\n");
        assert_eq!(f.next_line(), Frame::Line("{\"op\":\"ping\"}".into()));
        assert_eq!(f.next_line(), Frame::Line("{\"op\":\"stats\"}".into()));
        assert_eq!(f.next_line(), Frame::NeedMore);
    }

    #[test]
    fn exact_cap_line_is_served() {
        let mut f = LineFramer::new(8);
        f.push(b"12345678"); // exactly at the cap, no newline yet
        assert_eq!(f.next_line(), Frame::NeedMore);
        f.push(b"\n");
        assert_eq!(f.next_line(), Frame::Line("12345678".into()));
    }

    #[test]
    fn over_cap_without_newline_is_too_long() {
        let mut f = LineFramer::new(8);
        f.push(b"123456789"); // nine bytes of content, no newline
        assert_eq!(f.next_line(), Frame::TooLong);
        // The framer stays dead even if a newline shows up later.
        f.push(b"\n");
        assert_eq!(f.next_line(), Frame::TooLong);
    }

    #[test]
    fn over_cap_with_newline_already_buffered_is_too_long() {
        let mut f = LineFramer::new(8);
        f.push(b"123456789\n");
        assert_eq!(f.next_line(), Frame::TooLong);
    }

    #[test]
    fn trickled_oversize_line_dies_at_the_cap_not_the_newline() {
        // Slow-loris shape: 16-byte chunks, never a newline, cap 64.
        let mut f = LineFramer::new(64);
        for i in 0..4 {
            f.push(&[b'x'; 16]);
            let frame = f.next_line();
            if i < 3 {
                assert_eq!(frame, Frame::NeedMore, "chunk {i}");
            }
        }
        f.push(&[b'x'; 16]); // 80 bytes total > 64
        assert_eq!(f.next_line(), Frame::TooLong);
    }

    #[test]
    fn trailing_line_without_newline_is_yielded_at_eof() {
        let mut f = LineFramer::new(64);
        f.push(b"{\"op\":\"ping\"}");
        assert_eq!(f.next_line(), Frame::NeedMore);
        assert_eq!(f.take_trailing(), Some("{\"op\":\"ping\"}".into()));
        assert_eq!(f.take_trailing(), None);
    }

    #[test]
    fn invalid_utf8_is_replaced_not_fatal() {
        let mut f = LineFramer::new(64);
        f.push(&[0xff, 0xfe, b'\n']);
        match f.next_line() {
            Frame::Line(l) => assert_eq!(l, "\u{fffd}\u{fffd}"),
            other => panic!("expected line, got {other:?}"),
        }
    }

    /// A reader that scripts its responses, for exercising EINTR and
    /// WouldBlock handling without a real socket.
    struct Scripted(Vec<Result<Vec<u8>, io::ErrorKind>>);

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.0.pop() {
                None => Ok(0),
                Some(Ok(bytes)) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(Err(kind)) => Err(io::Error::from(kind)),
            }
        }
    }

    #[test]
    fn pump_retries_on_eintr() {
        // Script (popped back-to-front): EINTR, data, EINTR, WouldBlock.
        let mut src = Scripted(vec![
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::Interrupted),
            Ok(b"{\"op\":\"ping\"}\n".to_vec()),
            Err(io::ErrorKind::Interrupted),
        ]);
        let mut f = LineFramer::new(64);
        let out = pump(&mut src, &mut f, 1 << 20);
        assert!(matches!(out, Pump::Drained { bytes: 14 }), "got {out:?}");
        assert_eq!(f.next_line(), Frame::Line("{\"op\":\"ping\"}".into()));
    }

    #[test]
    fn pump_reports_eof_after_delivering_bytes() {
        let mut src = Scripted(vec![Ok(b"tail".to_vec())]);
        let mut f = LineFramer::new(64);
        let out = pump(&mut src, &mut f, 1 << 20);
        assert!(matches!(out, Pump::Eof { bytes: 4 }), "got {out:?}");
        assert_eq!(f.take_trailing(), Some("tail".into()));
    }

    #[test]
    fn pump_respects_byte_budget() {
        let mut src = Scripted(vec![
            Ok(vec![b'b'; 10]),
            Ok(vec![b'a'; 10]),
        ]);
        let mut f = LineFramer::new(1024);
        let out = pump(&mut src, &mut f, 10);
        assert!(matches!(out, Pump::Drained { bytes: 10 }), "got {out:?}");
        assert_eq!(f.buffered(), 10);
    }

    #[test]
    fn pump_surfaces_hard_errors() {
        let mut src = Scripted(vec![Err(io::ErrorKind::ConnectionReset)]);
        let mut f = LineFramer::new(64);
        match pump(&mut src, &mut f, 1 << 20) {
            Pump::Err(e) => assert_eq!(e.kind(), io::ErrorKind::ConnectionReset),
            other => panic!("expected error, got {other:?}"),
        }
    }
}

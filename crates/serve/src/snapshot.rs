//! Immutable model snapshots and the atomic hot-swap cell.
//!
//! A [`Snapshot`] bundles everything one query needs — the scoring model,
//! the name dictionaries, and the known-true triples to filter out of
//! answers — into a single immutable unit shared behind an `Arc`. The
//! [`SnapshotSwap`] cell publishes the current snapshot together with a
//! monotonically increasing **epoch**; swapping installs a new snapshot
//! and bumps the epoch in one critical section, so any `(snapshot, epoch)`
//! pair a reader observes is consistent. The result cache tags entries
//! with the epoch they were computed under and refuses to serve an entry
//! whose tag differs from the epoch loaded for the request, which is what
//! makes a swap an *atomic invalidation*: no post-swap request can ever
//! see a pre-swap answer.

use mei_core::MultiEmbedModel;
use mei_kg::{Dictionary, TripleStore};
use mei_quant::ScreenIndex;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Everything needed to answer prediction queries against one model
/// checkpoint: the scorer, the entity/relation vocabularies, and the
/// known-true triples excluded from answers (the filtered protocol of
/// §5.2, applied at serving time so the engine never "predicts" an edge
/// it was trained on).
pub struct Snapshot {
    /// The scoring model.
    pub model: MultiEmbedModel,
    /// Entity vocabulary (names ↔ dense ids).
    pub entities: Dictionary,
    /// Relation vocabulary.
    pub relations: Dictionary,
    /// Known-true triples filtered out of every answer.
    pub exclude: TripleStore,
    /// The quantized screen index over this snapshot's entity table, built
    /// lazily on first use (or eagerly by the engine before a swap when
    /// screening is enabled). Living inside the snapshot means a swap
    /// *cannot* serve a stale index: the incoming snapshot arrives with an
    /// empty cell and the index is rebuilt from its own entity table.
    pub(crate) screen_index: OnceLock<Arc<ScreenIndex>>,
}

impl Snapshot {
    /// Bundles a model with its vocabularies and exclusion set.
    ///
    /// Panics if the dictionary sizes disagree with the model's embedding
    /// table shapes — a mismatched snapshot would silently mistranslate
    /// names to rows.
    pub fn new(
        model: MultiEmbedModel,
        entities: Dictionary,
        relations: Dictionary,
        exclude: TripleStore,
    ) -> Self {
        assert_eq!(
            entities.len(),
            model.config().num_entities,
            "entity dictionary size must match the model's entity table"
        );
        assert_eq!(
            relations.len(),
            model.config().num_relations,
            "relation dictionary size must match the model's relation table"
        );
        Self { model, entities, relations, exclude, screen_index: OnceLock::new() }
    }

    /// The per-row int8 screen index over this snapshot's entity table,
    /// built on first call and shared afterwards. Deterministic: two
    /// snapshots with byte-identical entity tables build byte-identical
    /// indexes.
    pub fn screen_index(&self) -> Arc<ScreenIndex> {
        Arc::clone(
            self.screen_index.get_or_init(|| Arc::new(ScreenIndex::build(&self.model))),
        )
    }

    /// Bundles a model with synthetic `e<i>` / `r<i>` name dictionaries —
    /// for tests and benches that work in id space only.
    pub fn with_ids(model: MultiEmbedModel, exclude: TripleStore) -> Self {
        let entities =
            Dictionary::from_names((0..model.config().num_entities).map(|i| format!("e{i}")));
        let relations =
            Dictionary::from_names((0..model.config().num_relations).map(|i| format!("r{i}")));
        Self::new(model, entities, relations, exclude)
    }

    /// Whether `other` can replace this snapshot in place: the vocabularies
    /// must be identical in size so outstanding name↔id translations and
    /// client-held ids stay valid across the swap.
    pub fn compatible_with(&self, other: &Snapshot) -> bool {
        self.entities.len() == other.entities.len()
            && self.relations.len() == other.relations.len()
    }
}

/// The hot-swap cell: an epoch-tagged `Arc<Snapshot>` pointer.
///
/// Readers call [`SnapshotSwap::load`] and get a consistent
/// `(snapshot, epoch)` pair; writers call [`SnapshotSwap::swap`] to
/// install a new snapshot and bump the epoch atomically. Loads are
/// read-locked and never block each other; a swap blocks loads only for
/// the pointer store and counter bump (the new snapshot is fully built
/// before the lock is taken).
pub struct SnapshotSwap {
    current: RwLock<Arc<Snapshot>>,
    epoch: AtomicU64,
}

impl SnapshotSwap {
    /// Wraps the initial snapshot at epoch 0.
    pub fn new(initial: Snapshot) -> Self {
        Self { current: RwLock::new(Arc::new(initial)), epoch: AtomicU64::new(0) }
    }

    /// The current snapshot and the epoch it was installed at, read as one
    /// consistent pair.
    pub fn load(&self) -> (Arc<Snapshot>, u64) {
        let guard = self.current.read();
        // Read the epoch while still holding the read lock so it cannot
        // belong to a snapshot installed after the pointer we cloned.
        let epoch = self.epoch.load(Ordering::Acquire);
        (Arc::clone(&guard), epoch)
    }

    /// The current epoch without touching the pointer.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Installs `next` and bumps the epoch, returning the new epoch.
    ///
    /// In-flight requests that loaded the old snapshot keep scoring
    /// against it (their `Arc` keeps it alive), but their results are
    /// tagged with the old epoch and so are never served from the cache
    /// after the swap.
    pub fn swap(&self, next: Snapshot) -> u64 {
        self.swap_arc(Arc::new(next))
    }

    /// [`SnapshotSwap::swap`] for an already-`Arc`ed snapshot — lets the
    /// engine keep a handle to what it installed (to build the screen
    /// index *after* the epoch bump) without a second allocation.
    pub fn swap_arc(&self, next: Arc<Snapshot>) -> u64 {
        let mut guard = self.current.write();
        *guard = next;
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mei_core::WeightPreset;
    use rand::{rngs::StdRng, SeedableRng};

    fn model(seed: u64) -> MultiEmbedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        MultiEmbedModel::from_preset(WeightPreset::ComplEx, 6, 2, 4, &mut rng)
    }

    #[test]
    fn load_and_swap_keep_epoch_consistent() {
        let swap = SnapshotSwap::new(Snapshot::with_ids(model(1), TripleStore::new()));
        let (s0, e0) = swap.load();
        assert_eq!(e0, 0);
        assert_eq!(s0.entities.len(), 6);

        let e1 = swap.swap(Snapshot::with_ids(model(2), TripleStore::new()));
        assert_eq!(e1, 1);
        let (s1, e) = swap.load();
        assert_eq!(e, 1);
        assert!(!Arc::ptr_eq(&s0, &s1));
        // The old Arc is still alive and scorable for in-flight requests.
        assert_eq!(s0.entities.len(), 6);
    }

    #[test]
    fn compatible_with_checks_vocabulary_sizes() {
        let a = Snapshot::with_ids(model(1), TripleStore::new());
        let b = Snapshot::with_ids(model(2), TripleStore::new());
        assert!(a.compatible_with(&b));
        let mut rng = StdRng::seed_from_u64(3);
        let small = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 4, 2, 4, &mut rng);
        let c = Snapshot::with_ids(small, TripleStore::new());
        assert!(!a.compatible_with(&c));
    }

    #[test]
    #[should_panic(expected = "entity dictionary size")]
    fn mismatched_dictionary_is_rejected() {
        let m = model(1);
        let entities = Dictionary::from_names(["only-one"]);
        let relations = Dictionary::from_names(["r0", "r1"]);
        Snapshot::new(m, entities, relations, TripleStore::new());
    }
}

//! # mei-serve — batched link-prediction query serving
//!
//! The training side of this workspace produces a `MultiEmbedModel`
//! snapshot; this crate turns one into an online query-answering service.
//! It exists because the one-shot `mei predict` path re-walks the whole
//! entity table per request and sorts all `|E|` candidates to pick ten —
//! fine for a CLI, hopeless for traffic. The serving engine instead:
//!
//! * **micro-batches** concurrent top-k requests into
//!   [`mei_eval::TripleScorer::score_block`] calls, so a block of requests
//!   streams the entity table through the blocked GEMM kernel once instead
//!   of once per request, and requests sharing a `(side, anchor,
//!   relation)` query are scored exactly once per batch;
//! * answers through the bounded [`mei_eval::select_top_k`] selection
//!   (`O(|E|·k)` worst case) instead of a full `O(|E| log |E|)` sort, with
//!   answers element-for-element identical to the naive reference path;
//! * keeps a **sharded LRU cache** of results keyed by
//!   `(side, anchor, relation, k)`, tagged with the snapshot epoch;
//! * supports **atomic snapshot hot-swap**: a training run can publish a
//!   new checkpoint and [`Engine::swap_snapshot`] installs it without
//!   downtime; the epoch bump makes every cached result from older
//!   snapshots unservable (checked on every lookup, so no stale answer
//!   can escape), and the checksummed model-file format guards against
//!   swapping in a half-written checkpoint;
//! * speaks **newline-delimited JSON over TCP** ([`Server`]) with no
//!   async runtime — a single epoll event loop (std-only FFI, Linux)
//!   drives nonblocking accept and every connection's read/write state
//!   machine, parking cache-missing predicts as engine tickets instead
//!   of threads, with all scoring funneled through the shared worker
//!   pool;
//! * instruments everything through `mei-obs`: request latency and batch
//!   size histograms, cache hit/miss counters, swap counts, served-epoch
//!   gauge, exportable as one JSONL snapshot line.
//!
//! ```
//! use mei_serve::{Engine, ServeConfig, Snapshot};
//! use mei_core::{ModelConfig, MultiEmbedModel, WeightPreset};
//! use mei_eval::Side;
//! use mei_kg::{Dictionary, EntityId, RelationId, TripleStore};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 10, 2, 4, &mut rng);
//! let snapshot = Snapshot::with_ids(model, TripleStore::new());
//! let engine = Engine::start(snapshot, ServeConfig::default());
//! let answer = engine
//!     .predict(Side::Tail, EntityId(0), RelationId(1), 3)
//!     .unwrap();
//! assert_eq!(answer.results.len(), 3);
//! engine.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod frame;
pub mod poll;
pub mod server;
pub mod snapshot;
pub mod wire;

pub use cache::{CacheKey, CacheStats, ShardedLruCache};
pub use engine::{Engine, Prediction, ServeConfig, ServeError, Submission, Ticket};
pub use mei_quant::ScreenParams;
pub use server::{Acceptor, Server, ServerConfig};
pub use snapshot::{Snapshot, SnapshotSwap};
pub use wire::{Request, RequestName};

//! The newline-delimited JSON wire protocol.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line. The protocol is deliberately boring — any client
//! that can speak `printf | nc` can query the server:
//!
//! ```text
//! → {"op":"predict","side":"tail","anchor":"e3","relation":"r0","k":5}
//! ← {"ok":true,"epoch":0,"cached":false,"results":[{"entity":"e7","id":7,"score":1.25},…]}
//! ```
//!
//! Operations:
//!
//! * `predict` — top-k query. `side` is `"tail"` (rank tails of
//!   `(anchor, ?, relation)`) or `"head"` (rank heads of
//!   `(?, anchor, relation)`). `anchor` and `relation` accept either a
//!   vocabulary name (string) or a raw dense id (integer). An optional
//!   `id` field is echoed back verbatim so pipelined clients can match
//!   responses to requests.
//! * `stats` — one object with the full serving metrics snapshot plus
//!   cache hit/miss counters.
//! * `ping` — liveness probe.
//! * `swap` — hot-swaps the model from `model_file`. The file's header and
//!   checksum are validated with `peek_model_file_meta` *before* the model
//!   is built, so a truncated or corrupt checkpoint is rejected without
//!   disturbing the serving snapshot. Dictionaries and the exclusion set
//!   are carried over from the current snapshot (a swap replaces
//!   parameters, not the vocabulary).
//! * `shutdown` — acknowledges, then stops the server.
//!
//! Errors come back as `{"ok":false,"error":"…"}` and never kill the
//! connection; malformed JSON gets the same treatment.

use crate::engine::{Engine, Prediction, ServeError};
use crate::snapshot::Snapshot;
use mei_eval::Side;
use mei_kg::{Dictionary, EntityId, RelationId};
use mei_obs::json::{build, parse};
use mei_obs::JsonValue;

/// A wire-level failure: a machine-readable `kind` tag (clients branch on
/// it) plus a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Stable tag, e.g. `"bad_request"`, `"overloaded"`, `"line_too_long"`.
    pub kind: &'static str,
    /// Prose for humans and logs.
    pub message: String,
}

impl WireError {
    /// A malformed or unresolvable request.
    pub fn bad_request(message: String) -> Self {
        Self { kind: "bad_request", message }
    }
}

impl From<ServeError> for WireError {
    fn from(e: ServeError) -> Self {
        Self { kind: e.kind(), message: e.to_string() }
    }
}

/// A vocabulary reference from the wire: either an interned name or a raw
/// dense id.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestName {
    /// Look the id up in the dictionary.
    Name(String),
    /// Use the id directly.
    Id(u32),
}

impl RequestName {
    fn resolve(&self, dict: &Dictionary, what: &str) -> Result<u32, String> {
        match self {
            RequestName::Id(id) => Ok(*id),
            RequestName::Name(name) => dict
                .get(name)
                .ok_or_else(|| format!("unknown {what} {name:?}")),
        }
    }
}

/// A parsed wire request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Top-k prediction.
    Predict {
        /// Which slot to rank.
        side: Side,
        /// The fixed entity.
        anchor: RequestName,
        /// The relation.
        relation: RequestName,
        /// How many results to return.
        k: usize,
        /// Opaque client tag echoed back in the response.
        id: Option<JsonValue>,
    },
    /// Metrics snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Hot-swap the model from a checkpoint file.
    Swap {
        /// Path to the checkpoint, readable by the server process.
        model_file: String,
    },
    /// Stop the server.
    Shutdown,
}

fn parse_name(v: &JsonValue, field: &str) -> Result<RequestName, String> {
    match v {
        JsonValue::Str(s) => Ok(RequestName::Name(s.clone())),
        JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u32::MAX as f64 => {
            Ok(RequestName::Id(*n as u32))
        }
        _ => Err(format!("field {field:?} must be a name string or a non-negative integer id")),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let op = value
        .get("op")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "missing string field \"op\"".to_owned())?;
    match op {
        "predict" => {
            let side = match value.get("side").and_then(|v| v.as_str()) {
                Some("tail") => Side::Tail,
                Some("head") => Side::Head,
                _ => return Err("field \"side\" must be \"tail\" or \"head\"".to_owned()),
            };
            let anchor =
                parse_name(value.get("anchor").ok_or("missing field \"anchor\"")?, "anchor")?;
            let relation = parse_name(
                value.get("relation").ok_or("missing field \"relation\"")?,
                "relation",
            )?;
            let k = value
                .get("k")
                .and_then(|v| v.as_usize())
                .ok_or("field \"k\" must be a non-negative integer")?;
            Ok(Request::Predict { side, anchor, relation, k, id: value.get("id").cloned() })
        }
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "swap" => {
            let model_file = value
                .get("model_file")
                .and_then(|v| v.as_str())
                .ok_or("missing string field \"model_file\"")?
                .to_owned();
            Ok(Request::Swap { model_file })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

fn error_response(err: WireError) -> JsonValue {
    build::obj([
        ("ok", JsonValue::Bool(false)),
        ("error", JsonValue::Str(err.message)),
        ("kind", build::str(err.kind)),
    ])
}

/// The one-line response for a request line that exceeded the server's
/// line-length cap. Exposed for the TCP frontend, which detects the
/// overflow before the line ever reaches [`handle_line`].
pub fn oversize_line_response(max_bytes: usize) -> String {
    error_response(WireError {
        kind: "line_too_long",
        message: format!(
            "request line exceeds the {max_bytes}-byte limit; closing the connection"
        ),
    })
    .to_json()
}

/// A fully resolved predict request: names translated to dense ids
/// against `snap`, ready for [`Engine::submit`] or [`Engine::predict`].
/// The snapshot is kept so the response renders entity names from the
/// same vocabulary the ids were resolved against, even if the answer
/// lands after a swap.
pub(crate) struct PredictCall {
    /// The snapshot the names were resolved against.
    pub snap: std::sync::Arc<Snapshot>,
    /// Which slot to rank.
    pub side: Side,
    /// Resolved anchor entity.
    pub anchor: EntityId,
    /// Resolved relation.
    pub relation: RelationId,
    /// Result depth.
    pub k: usize,
    /// Opaque client tag echoed back in the response.
    pub tag: Option<JsonValue>,
}

/// Resolves a parsed predict request's names against the current
/// snapshot.
pub(crate) fn resolve_predict(engine: &Engine, req: &Request) -> Result<PredictCall, WireError> {
    let Request::Predict { side, anchor, relation, k, id } = req else { unreachable!() };
    let (snap, _) = engine.snapshot();
    let anchor_id = anchor.resolve(&snap.entities, "entity").map_err(WireError::bad_request)?;
    let relation_id =
        relation.resolve(&snap.relations, "relation").map_err(WireError::bad_request)?;
    Ok(PredictCall {
        snap,
        side: *side,
        anchor: EntityId(anchor_id),
        relation: RelationId(relation_id),
        k: *k,
        tag: id.clone(),
    })
}

/// Renders one predict outcome — success or error — as a response line.
pub(crate) fn predict_line(call: &PredictCall, outcome: Result<Prediction, ServeError>) -> String {
    let prediction = match outcome {
        Ok(p) => p,
        Err(e) => return error_response(e.into()).to_json(),
    };
    let results: Vec<JsonValue> = prediction
        .results
        .iter()
        .map(|&(e, score)| {
            build::obj([
                ("entity", build::str(call.snap.entities.name(e.0).unwrap_or("?"))),
                ("id", build::int(e.idx())),
                ("score", build::num(score as f64)),
            ])
        })
        .collect();
    let mut pairs = vec![
        ("ok", JsonValue::Bool(true)),
        ("epoch", build::int(prediction.epoch as usize)),
        ("cached", JsonValue::Bool(prediction.cached)),
        ("results", JsonValue::Arr(results)),
    ];
    if let Some(tag) = &call.tag {
        pairs.push(("id", tag.clone()));
    }
    build::obj(pairs).to_json()
}

fn swap_response(engine: &Engine, model_file: &str) -> Result<JsonValue, WireError> {
    let invalid = |e: mei_core::serialize::SerializeError| WireError {
        kind: "model_invalid",
        message: e.to_string(),
    };
    // The mapped loader validates the header and checksum before any
    // table is trusted (checksum-before-trust), so a truncated or
    // corrupt checkpoint is rejected without disturbing the serving
    // snapshot — and a valid v4 checkpoint is installed as zero-copy
    // mapped views instead of a deserialized copy.
    let model = mei_core::serialize::load_model_mapped(model_file).map_err(invalid)?;
    let (current, _) = engine.snapshot();
    let next = Snapshot {
        model,
        entities: current.entities.clone(),
        relations: current.relations.clone(),
        exclude: current.exclude.clone(),
        // Fresh cell: the screen index (when enabled) is rebuilt from the
        // incoming model's entity table, never carried across a swap.
        screen_index: Default::default(),
    };
    let epoch = engine.swap_snapshot(next)?;
    Ok(build::obj([("ok", JsonValue::Bool(true)), ("epoch", build::int(epoch as usize))]))
}

fn stats_response(engine: &Engine) -> JsonValue {
    let cache = engine.cache_stats();
    let screen = match engine.screen_params() {
        Some(p) => build::obj([
            ("enabled", JsonValue::Bool(true)),
            ("screen_k", build::int(p.screen_k)),
            ("threads", build::int(p.threads)),
            ("precompute_hot", build::int(engine.precompute_hot())),
        ]),
        None => build::obj([
            ("enabled", JsonValue::Bool(false)),
            ("precompute_hot", build::int(engine.precompute_hot())),
        ]),
    };
    build::obj([
        ("ok", JsonValue::Bool(true)),
        ("epoch", build::int(engine.epoch() as usize)),
        ("cache_hits", build::int(cache.hits as usize)),
        ("cache_misses", build::int(cache.misses as usize)),
        ("cache_hit_rate", build::num(cache.hit_rate())),
        ("screen", screen),
        ("metrics", engine.metrics_snapshot()),
    ])
}

/// Renders an ad-hoc wire error line from a kind tag and message.
pub(crate) fn error_line(kind: &'static str, message: &str) -> String {
    error_response(WireError { kind, message: message.to_owned() }).to_json()
}

/// Executes a `swap` op and renders its response line. Factored out so
/// the event-loop frontend can run it on a task thread (a swap maps and
/// validates a whole model file; the loop must keep serving meanwhile).
pub(crate) fn swap_line(engine: &Engine, model_file: &str) -> String {
    match swap_response(engine, model_file) {
        Ok(v) => v.to_json(),
        Err(e) => error_response(e).to_json(),
    }
}

/// How one request line should be carried out — split so the event-loop
/// frontend can route predicts through the nonblocking
/// [`Engine::submit`] path and swaps onto a task thread, while cheap
/// control ops answer inline.
pub(crate) enum Dispatch {
    /// Answer with this line; the flag means "shut the server down after
    /// the response is flushed".
    Respond(String, bool),
    /// A resolved predict, ready for submission.
    Predict(PredictCall),
    /// A swap op, to be executed via [`swap_line`] wherever the caller
    /// can afford to block.
    Swap {
        /// Path to the checkpoint to install.
        model_file: String,
    },
}

/// Parses and (for predicts) resolves one request line. Ping, stats and
/// shutdown are answered here; predicts and swaps are returned for the
/// caller to execute however it blocks (or doesn't).
pub(crate) fn dispatch_line(engine: &Engine, line: &str) -> Dispatch {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            return Dispatch::Respond(error_response(WireError::bad_request(e)).to_json(), false)
        }
    };
    let (response, shutdown) = match &request {
        Request::Ping => (Ok(build::obj([("ok", JsonValue::Bool(true))])), false),
        Request::Stats => (Ok(stats_response(engine)), false),
        Request::Predict { .. } => match resolve_predict(engine, &request) {
            Ok(call) => return Dispatch::Predict(call),
            Err(e) => (Err(e), false),
        },
        Request::Swap { model_file } => {
            return Dispatch::Swap { model_file: model_file.clone() }
        }
        Request::Shutdown => (Ok(build::obj([("ok", JsonValue::Bool(true))])), true),
    };
    match response {
        Ok(v) => Dispatch::Respond(v.to_json(), shutdown),
        Err(e) => Dispatch::Respond(error_response(e).to_json(), false),
    }
}

/// Handles one request line against `engine`, blocking for predicts and
/// swaps. Returns the one-line JSON response (without trailing newline)
/// and whether the client asked the server to shut down.
pub fn handle_line(engine: &Engine, line: &str) -> (String, bool) {
    match dispatch_line(engine, line) {
        Dispatch::Respond(line, stop) => (line, stop),
        Dispatch::Predict(call) => {
            let outcome = engine.predict(call.side, call.anchor, call.relation, call.k);
            (predict_line(&call, outcome), false)
        }
        Dispatch::Swap { model_file } => (swap_line(engine, &model_file), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use mei_core::{MultiEmbedModel, WeightPreset};
    use mei_kg::TripleStore;
    use rand::{rngs::StdRng, SeedableRng};

    fn engine() -> Engine {
        let mut rng = StdRng::seed_from_u64(11);
        let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 12, 2, 4, &mut rng);
        Engine::start(Snapshot::with_ids(model, TripleStore::new()), ServeConfig::default())
    }

    #[test]
    fn parse_accepts_names_and_ids() {
        let req = parse_request(
            r#"{"op":"predict","side":"head","anchor":"e3","relation":1,"k":4,"id":"q1"}"#,
        )
        .unwrap();
        assert_eq!(
            req,
            Request::Predict {
                side: Side::Head,
                anchor: RequestName::Name("e3".into()),
                relation: RequestName::Id(1),
                k: 4,
                id: Some(JsonValue::Str("q1".into())),
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_request("not json").unwrap_err().contains("invalid JSON"));
        assert!(parse_request(r#"{"k":1}"#).unwrap_err().contains("op"));
        assert!(parse_request(r#"{"op":"dance"}"#).unwrap_err().contains("unknown op"));
        assert!(parse_request(r#"{"op":"predict","side":"left"}"#)
            .unwrap_err()
            .contains("side"));
    }

    #[test]
    fn predict_round_trip_over_the_handler() {
        let engine = engine();
        let (line, stop) = handle_line(
            &engine,
            r#"{"op":"predict","side":"tail","anchor":"e0","relation":"r1","k":3,"id":7}"#,
        );
        assert!(!stop);
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("id").and_then(|x| x.as_usize()), Some(7));
        let results = v.get("results").and_then(|x| x.as_arr()).unwrap();
        assert_eq!(results.len(), 3);
        // Names round-trip through the dictionary.
        let first = &results[0];
        let id = first.get("id").and_then(|x| x.as_usize()).unwrap();
        assert_eq!(first.get("entity").and_then(|x| x.as_str()), Some(format!("e{id}").as_str()));
        engine.shutdown();
    }

    #[test]
    fn unknown_names_and_ops_surface_as_errors() {
        let engine = engine();
        for line in [
            r#"{"op":"predict","side":"tail","anchor":"nope","relation":0,"k":1}"#,
            r#"{"op":"predict","side":"tail","anchor":0,"relation":99,"k":1}"#,
            "}{",
        ] {
            let (resp, stop) = handle_line(&engine, line);
            assert!(!stop);
            let v = parse(&resp).unwrap();
            assert_eq!(v.get("ok"), Some(&JsonValue::Bool(false)), "line: {line}");
            assert!(v.get("error").is_some());
        }
        engine.shutdown();
    }

    #[test]
    fn stats_report_screen_config() {
        let engine = engine();
        let (resp, _) = handle_line(&engine, r#"{"op":"stats"}"#);
        let v = parse(&resp).unwrap();
        let screen = v.get("screen").expect("stats must carry the screen config");
        assert_eq!(screen.get("enabled"), Some(&JsonValue::Bool(false)));
        assert_eq!(screen.get("precompute_hot").and_then(|x| x.as_usize()), Some(0));
        engine.shutdown();

        let mut rng = StdRng::seed_from_u64(11);
        let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 12, 2, 4, &mut rng);
        let screened = Engine::start(
            Snapshot::with_ids(model, TripleStore::new()),
            ServeConfig {
                screen: Some(mei_quant::ScreenParams { screen_k: 7, threads: 3 }),
                precompute_hot: 5,
                ..ServeConfig::default()
            },
        );
        let (resp, _) = handle_line(&screened, r#"{"op":"stats"}"#);
        let v = parse(&resp).unwrap();
        let screen = v.get("screen").unwrap();
        assert_eq!(screen.get("enabled"), Some(&JsonValue::Bool(true)));
        assert_eq!(screen.get("screen_k").and_then(|x| x.as_usize()), Some(7));
        assert_eq!(screen.get("threads").and_then(|x| x.as_usize()), Some(3));
        assert_eq!(screen.get("precompute_hot").and_then(|x| x.as_usize()), Some(5));
        screened.shutdown();
    }

    #[test]
    fn shutdown_op_signals_the_server() {
        let engine = engine();
        let (resp, stop) = handle_line(&engine, r#"{"op":"shutdown"}"#);
        assert!(stop);
        assert_eq!(parse(&resp).unwrap().get("ok"), Some(&JsonValue::Bool(true)));
        engine.shutdown();
    }

    #[test]
    fn errors_carry_machine_readable_kinds() {
        let engine = engine();
        let (resp, _) = handle_line(&engine, "}{");
        assert_eq!(parse(&resp).unwrap().get("kind").and_then(|k| k.as_str()), Some("bad_request"));
        let (resp, _) =
            handle_line(&engine, r#"{"op":"predict","side":"tail","anchor":99,"relation":0,"k":1}"#);
        assert_eq!(
            parse(&resp).unwrap().get("kind").and_then(|k| k.as_str()),
            Some("invalid_entity")
        );
        let (resp, _) = handle_line(&engine, r#"{"op":"swap","model_file":"/nonexistent"}"#);
        assert_eq!(
            parse(&resp).unwrap().get("kind").and_then(|k| k.as_str()),
            Some("model_invalid")
        );
        let oversize = parse(&oversize_line_response(1024)).unwrap();
        assert_eq!(oversize.get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(oversize.get("kind").and_then(|k| k.as_str()), Some("line_too_long"));
        engine.shutdown();
    }

    #[test]
    fn swap_rejects_missing_and_corrupt_files() {
        let engine = engine();
        let (resp, _) = handle_line(&engine, r#"{"op":"swap","model_file":"/nonexistent"}"#);
        assert_eq!(parse(&resp).unwrap().get("ok"), Some(&JsonValue::Bool(false)));
        assert_eq!(engine.epoch(), 0);
        engine.shutdown();
    }
}

//! Connection-lifecycle regression suite for the epoll frontend.
//!
//! The thread-per-connection server leaked in three ways: handler
//! `JoinHandle`s accumulated unjoined for the life of the process, a
//! failing `accept` (EMFILE under fd pressure) busy-spun the accept loop
//! at 100% CPU, and shutdown raced the accept loop over the listener.
//! These tests pin the event-loop replacements: connection churn leaves
//! no threads or tracked connections behind, accept errors back off and
//! are counted, shutdown-vs-accept races resolve cleanly, and a
//! memory-mapped snapshot swap serves bit-identical answers.

use mei_core::serialize::save_model;
use mei_core::{MultiEmbedModel, WeightPreset};
use mei_kg::TripleStore;
use mei_obs::json::parse;
use mei_obs::JsonValue;
use mei_serve::{Acceptor, Engine, ServeConfig, Server, ServerConfig, Snapshot};
use rand::{rngs::StdRng, SeedableRng};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine(config: ServeConfig) -> Arc<Engine> {
    let mut rng = StdRng::seed_from_u64(23);
    let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 20, 3, 4, &mut rng);
    Arc::new(Engine::start(Snapshot::with_ids(model, TripleStore::new()), config))
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

fn read_response(stream: &TcpStream) -> JsonValue {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    parse(line.trim_end()).unwrap()
}

/// Current thread count of this process, from /proc (Linux).
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line in /proc/self/status")
}

/// Waits (bounded) for an eventually-true condition driven by the event
/// loop, which processes disconnects asynchronously.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn a_thousand_connect_disconnect_cycles_leak_nothing() {
    let engine = engine(ServeConfig::default());
    let mut server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Warm up one connection so lazily-started machinery is counted in
    // the baseline, then measure.
    {
        let mut c = TcpStream::connect(addr).unwrap();
        send_line(&mut c, r#"{"op":"ping"}"#);
        read_response(&c);
    }
    wait_until("warmup disconnect", || engine.metrics().gauge("serve/connections").get() == 0.0);
    let threads_before = thread_count();

    for i in 0..1000 {
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Alternate a pure control op with a real scoring round trip so
        // churn exercises both the inline and the parked-ticket paths.
        if i % 2 == 0 {
            send_line(&mut c, r#"{"op":"ping"}"#);
        } else {
            send_line(&mut c, r#"{"op":"predict","side":"tail","anchor":0,"relation":0,"k":2}"#);
        }
        let resp = read_response(&c);
        assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(true)), "cycle {i}: {resp:?}");
    }

    // Every disconnect is eventually reaped: the gauge returns to zero
    // and no per-connection threads (the old design's leak) remain.
    wait_until("all disconnects reaped", || {
        engine.metrics().gauge("serve/connections").get() == 0.0
    });
    assert_eq!(engine.metrics().counter("serve/accepted").get(), 1001);
    let threads_after = thread_count();
    assert!(
        threads_after <= threads_before + 4,
        "thread count grew across churn: {threads_before} -> {threads_after} \
         (thread-per-connection regression?)"
    );
    server.shutdown();
}

/// An acceptor whose first `failures` accept calls fail with EMFILE —
/// the fd-exhaustion shape that busy-spun the old accept loop.
struct FlakyAcceptor {
    listener: TcpListener,
    remaining_failures: AtomicUsize,
}

impl Acceptor for FlakyAcceptor {
    fn accept(&self) -> io::Result<TcpStream> {
        let left = self.remaining_failures.load(Ordering::Relaxed);
        if left > 0 {
            self.remaining_failures.store(left - 1, Ordering::Relaxed);
            return Err(io::Error::from_raw_os_error(24)); // EMFILE
        }
        self.listener.accept().map(|(s, _)| s)
    }

    fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    fn raw_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        self.listener.as_raw_fd()
    }
}

#[test]
fn accept_errors_back_off_are_counted_and_do_not_spin() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let acceptor =
        FlakyAcceptor { listener, remaining_failures: AtomicUsize::new(5) };
    let engine = engine(ServeConfig::default());
    let mut server =
        Server::start_with_acceptor(Arc::clone(&engine), acceptor, ServerConfig::default())
            .unwrap();

    // Connect while accept is failing: the SYN backlog holds the
    // connection, the loop backs off (1ms, 2ms, 4ms, ...) instead of
    // spinning, and once accept heals the client is served.
    let mut c = TcpStream::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    send_line(&mut c, r#"{"op":"ping"}"#);
    let resp = read_response(&c);
    assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(true)));

    assert_eq!(engine.metrics().counter("serve/accept_errors").get(), 5);
    assert_eq!(engine.metrics().counter("serve/accepted").get(), 1);
    // Busy-spin regression guard: five backoff rounds plus the serving
    // round trip is a handful of wakeups, not thousands.
    let wakes = engine.metrics().counter("serve/epoll_wakes").get();
    assert!(wakes < 500, "event loop spun through {wakes} wakeups during accept backoff");
    server.shutdown();
}

#[test]
fn shutdown_racing_a_connection_storm_never_hangs_or_panics() {
    // The old server raced `shutdown` against the accept thread over the
    // listener fd. Run the race repeatedly: connectors hammer while the
    // server tears down at a random-ish point; every iteration must
    // terminate (bounded client timeouts are the watchdog) with the
    // engine's worker threads fully joined.
    for round in 0..50 {
        let engine = engine(ServeConfig::default());
        let mut server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let stormer = std::thread::spawn(move || {
            // Keep connecting until the listener dies; failures are the
            // expected end state, not errors.
            for _ in 0..100 {
                match TcpStream::connect(addr) {
                    Ok(mut c) => {
                        c.set_read_timeout(Some(Duration::from_secs(5))).ok();
                        c.set_write_timeout(Some(Duration::from_secs(5))).ok();
                        let _ = c.write_all(b"{\"op\":\"ping\"}\n");
                        let mut buf = String::new();
                        let _ = BufReader::new(c).read_line(&mut buf);
                    }
                    Err(_) => break,
                }
            }
        });

        // Stagger the teardown point across rounds to move the race.
        std::thread::sleep(Duration::from_millis(round % 7));
        server.shutdown();
        stormer.join().expect("connection stormer panicked");
    }
}

#[test]
fn mapped_snapshot_swap_serves_bit_identical_answers() {
    let mut rng = StdRng::seed_from_u64(23);
    let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 20, 3, 4, &mut rng);
    let path = std::env::temp_dir().join(format!("mei_lifecycle_swap_{}.bin", std::process::id()));
    save_model(&model, &path).unwrap();

    let engine = Arc::new(Engine::start(
        Snapshot::with_ids(model, TripleStore::new()),
        ServeConfig { cache: false, ..ServeConfig::default() },
    ));
    let mut server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let mut c = TcpStream::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(20))).unwrap();

    let predict = r#"{"op":"predict","side":"tail","anchor":3,"relation":1,"k":5}"#;
    send_line(&mut c, predict);
    let before = read_response(&c);
    assert_eq!(before.get("ok"), Some(&JsonValue::Bool(true)));

    // Swap in the same parameters from the v4 file: the wire handler
    // loads it memory-mapped (checksum-first), installs it, and bumps
    // the epoch. Answers must be bit-identical to the owned snapshot's.
    send_line(
        &mut c,
        &format!(r#"{{"op":"swap","model_file":"{}"}}"#, path.display()),
    );
    let swapped = read_response(&c);
    assert_eq!(swapped.get("ok"), Some(&JsonValue::Bool(true)), "{swapped:?}");
    assert_eq!(swapped.get("epoch").and_then(|v| v.as_f64()), Some(1.0));

    send_line(&mut c, predict);
    let after = read_response(&c);
    assert_eq!(after.get("ok"), Some(&JsonValue::Bool(true)));
    assert_eq!(
        after.get("results"),
        before.get("results"),
        "mapped swap changed answers: {before:?} vs {after:?}"
    );
    assert_eq!(after.get("epoch").and_then(|v| v.as_f64()), Some(1.0));

    // The swap critical path was timed into the latency histogram.
    let hist = engine.metrics().histogram("serve/swap_latency_secs", &[]);
    assert_eq!(hist.count(), 1);

    server.shutdown();
    std::fs::remove_file(&path).ok();
}

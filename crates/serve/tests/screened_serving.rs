//! Contract tests for the quantized screen→rescore serving path and the
//! hot-key precompute: screened answers agree with the exact engine,
//! precomputed entries are served from the cache under the new epoch, and
//! a swap can never leak answers from the previous model.

use mei_core::{MultiEmbedModel, WeightPreset};
use mei_eval::Side;
use mei_kg::{EntityId, RelationId, Triple, TripleStore};
use mei_serve::{Engine, ScreenParams, ServeConfig, Snapshot};
use rand::{rngs::StdRng, SeedableRng};

const ENTITIES: usize = 64;

fn snapshot(seed: u64, exclude: TripleStore) -> Snapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, ENTITIES, 4, 6, &mut rng);
    Snapshot::with_ids(model, exclude)
}

fn assert_bit_identical(a: &[(EntityId, f32)], b: &[(EntityId, f32)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.0, y.0, "{what}: entity mismatch");
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "{what}: score bits differ");
    }
}

/// With `screen_k` covering the whole vocabulary every entity survives
/// screening, so the screened engine must answer **bit-identically** to
/// the exact engine — queries, exclusions, tie order and all.
#[test]
fn screened_engine_matches_exact_engine() {
    let exclude: TripleStore =
        (0..30u32).map(|i| Triple::new(i % 5, (i * 7) % ENTITIES as u32, i % 4)).collect();
    let exact = Engine::start(
        snapshot(9, exclude.clone()),
        ServeConfig { cache: false, ..ServeConfig::default() },
    );
    let screened = Engine::start(
        snapshot(9, exclude),
        ServeConfig {
            cache: false,
            screen: Some(ScreenParams { screen_k: ENTITIES, threads: 2 }),
            ..ServeConfig::default()
        },
    );
    for side in [Side::Tail, Side::Head] {
        for anchor in [0u32, 2, 4, 33] {
            for k in [1usize, 5, 17] {
                let want = exact.predict(side, EntityId(anchor), RelationId(1), k).unwrap();
                let got = screened.predict(side, EntityId(anchor), RelationId(1), k).unwrap();
                assert_bit_identical(
                    &want.results,
                    &got.results,
                    &format!("side {side:?} anchor {anchor} k {k}"),
                );
            }
        }
    }
    let metrics = screened.metrics_snapshot();
    let screened_queries = metrics
        .get("serve/screened_queries")
        .and_then(|v| v.get("value"))
        .and_then(|v| v.as_usize())
        .unwrap();
    assert!(screened_queries > 0, "screened path must actually have been used");
    exact.shutdown();
    screened.shutdown();
}

/// A narrow screen still answers with exact scores (survivors are
/// rescored in f32), and results stay deterministic across repeats.
#[test]
fn narrow_screen_returns_exact_scores_and_is_stable() {
    let engine = Engine::start(
        snapshot(3, TripleStore::new()),
        ServeConfig {
            cache: false,
            screen: Some(ScreenParams { screen_k: 12, threads: 1 }),
            ..ServeConfig::default()
        },
    );
    let (snap, _) = engine.snapshot();
    let first = engine.predict(Side::Tail, EntityId(5), RelationId(0), 8).unwrap();
    for &(e, s) in first.results.iter() {
        let exact = mei_eval::top_k_reference(
            &snap.model,
            Side::Tail,
            EntityId(5),
            RelationId(0),
            ENTITIES,
            &TripleStore::new(),
        );
        let reference = exact.iter().find(|(re, _)| *re == e).unwrap().1;
        assert_eq!(s.to_bits(), reference.to_bits(), "survivor {e:?} not exactly rescored");
    }
    for _ in 0..3 {
        let again = engine.predict(Side::Tail, EntityId(5), RelationId(0), 8).unwrap();
        assert_bit_identical(&first.results, &again.results, "repeat determinism");
    }
    engine.shutdown();
}

/// Hot `(query, k)` identities are precomputed into the cache on swap:
/// the first post-swap request on a hot key is a cache hit carrying the
/// new epoch, and its answer matches what the new snapshot would compute.
#[test]
fn hot_keys_are_precomputed_on_swap() {
    let engine = Engine::start(
        snapshot(1, TripleStore::new()),
        ServeConfig { precompute_hot: 4, ..ServeConfig::default() },
    );
    // Make (Tail, e2, r0, k=5) hot.
    for _ in 0..6 {
        engine.predict(Side::Tail, EntityId(2), RelationId(0), 5).unwrap();
    }
    let epoch = engine.swap_snapshot(snapshot(2, TripleStore::new())).unwrap();
    assert_eq!(epoch, 1);

    let hit = engine.predict(Side::Tail, EntityId(2), RelationId(0), 5).unwrap();
    assert!(hit.cached, "hot key must be served from the precomputed cache");
    assert_eq!(hit.epoch, 1, "precomputed entry must carry the post-swap epoch");

    // The precomputed answer is the *new* model's answer.
    let fresh = snapshot(2, TripleStore::new());
    let want = mei_eval::top_k_reference(
        &fresh.model,
        Side::Tail,
        EntityId(2),
        RelationId(0),
        5,
        &TripleStore::new(),
    );
    assert_bit_identical(&hit.results, &want, "precomputed answer vs new model");

    let metrics = engine.metrics_snapshot();
    let precomputed = metrics
        .get("serve/precomputed")
        .and_then(|v| v.get("value"))
        .and_then(|v| v.as_usize())
        .unwrap();
    assert!(precomputed >= 1, "swap must have precomputed at least the hot key");
    engine.shutdown();
}

/// Precompute composes with the screened path, and repeated swaps keep
/// refreshing the hot set — every post-swap read sees the current epoch.
#[test]
fn precompute_with_screening_tracks_epochs() {
    let engine = Engine::start(
        snapshot(5, TripleStore::new()),
        ServeConfig {
            precompute_hot: 2,
            screen: Some(ScreenParams { screen_k: ENTITIES, threads: 1 }),
            ..ServeConfig::default()
        },
    );
    for _ in 0..4 {
        engine.predict(Side::Head, EntityId(7), RelationId(1), 3).unwrap();
    }
    for swap_seed in [11u64, 12, 13] {
        let epoch = engine.swap_snapshot(snapshot(swap_seed, TripleStore::new())).unwrap();
        let p = engine.predict(Side::Head, EntityId(7), RelationId(1), 3).unwrap();
        assert!(p.cached, "hot key should hit the refreshed precompute");
        assert_eq!(p.epoch, epoch, "no answer from an earlier epoch may surface");
    }
    engine.shutdown();
}

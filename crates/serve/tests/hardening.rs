//! Fault injection for the serving frontend and engine backpressure.
//!
//! Every test here plays a misbehaving client against a live TCP server
//! and asserts the failure is *contained*: the offender gets a structured
//! wire error (or a disconnect), the process neither panics nor grows
//! without bound, and well-behaved clients keep getting correct answers.

use mei_core::{MultiEmbedModel, WeightPreset};
use mei_kg::TripleStore;
use mei_obs::json::parse;
use mei_obs::JsonValue;
use mei_serve::{Engine, ServeConfig, Server, ServerConfig, Snapshot};
use rand::{rngs::StdRng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn engine(config: ServeConfig) -> Arc<Engine> {
    let mut rng = StdRng::seed_from_u64(11);
    let model = MultiEmbedModel::from_preset(WeightPreset::ComplEx, 20, 3, 4, &mut rng);
    Arc::new(Engine::start(Snapshot::with_ids(model, TripleStore::new()), config))
}

fn server(engine: Arc<Engine>, server_config: ServerConfig) -> Server {
    Server::start_with(engine, "127.0.0.1:0", server_config).unwrap()
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

fn read_response(stream: &TcpStream) -> JsonValue {
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    parse(line.trim_end()).unwrap()
}

fn kind_of(v: &JsonValue) -> Option<&str> {
    v.get("kind").and_then(|k| k.as_str())
}

#[test]
fn garbage_bytes_get_a_structured_error_and_the_connection_survives() {
    let mut server = server(engine(ServeConfig::default()), ServerConfig::default());
    let mut client = TcpStream::connect(server.local_addr()).unwrap();

    // Binary junk that is not even UTF-8, followed by a newline.
    client.write_all(b"\x00\xff\xfe{{{[[not json\n").unwrap();
    client.flush().unwrap();
    let response = read_response(&client);
    assert_eq!(response.get("ok"), Some(&JsonValue::Bool(false)));
    assert_eq!(kind_of(&response), Some("bad_request"));

    // Same connection, a valid request right after: must still work.
    send_line(&mut client, r#"{"op":"ping"}"#);
    let pong = read_response(&client);
    assert_eq!(pong.get("ok"), Some(&JsonValue::Bool(true)));
    server.shutdown();
}

#[test]
fn saturated_queue_rejects_over_the_wire_and_counts_rejections() {
    // workers: 0 means nothing ever drains the queue, so saturation is
    // deterministic: the first predict parks its handler thread, the
    // second must be turned away at the door.
    let engine = engine(ServeConfig {
        workers: 0,
        cache: false,
        max_queue: 1,
        ..ServeConfig::default()
    });
    // Generous read timeout: the parked handler is *supposed* to wait.
    let config = ServerConfig {
        read_timeout: Some(Duration::from_secs(30)),
        write_timeout: Some(Duration::from_secs(30)),
        ..ServerConfig::default()
    };
    let mut server = server(Arc::clone(&engine), config);

    let mut occupant = TcpStream::connect(server.local_addr()).unwrap();
    send_line(&mut occupant, r#"{"op":"predict","side":"tail","anchor":0,"relation":0,"k":2}"#);
    // Wait until that request is actually sitting in the engine queue.
    let deadline = Instant::now() + Duration::from_secs(10);
    while engine.queue_depth() < 1 {
        assert!(Instant::now() < deadline, "occupant request never reached the queue");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut rejected = TcpStream::connect(server.local_addr()).unwrap();
    send_line(&mut rejected, r#"{"op":"predict","side":"tail","anchor":1,"relation":0,"k":2}"#);
    let response = read_response(&rejected);
    assert_eq!(response.get("ok"), Some(&JsonValue::Bool(false)));
    assert_eq!(kind_of(&response), Some("overloaded"));
    assert_eq!(engine.metrics().counter("serve/rejected").get(), 1);

    // Control operations bypass the scoring queue: ping still answers.
    send_line(&mut rejected, r#"{"op":"ping"}"#);
    let pong = read_response(&rejected);
    assert_eq!(pong.get("ok"), Some(&JsonValue::Bool(true)));

    // Shutdown must unblock the parked occupant and join every thread.
    server.shutdown();
}

#[test]
fn slow_loris_without_newlines_is_cut_off_by_the_line_cap() {
    // A trickling sender defeats idle timeouts (every byte resets the
    // read clock), so the line cap is what bounds the damage.
    let config = ServerConfig {
        read_timeout: Some(Duration::from_secs(30)),
        write_timeout: Some(Duration::from_secs(30)),
        max_line_bytes: 64,
    };
    let mut server = server(engine(ServeConfig::default()), config);
    let mut client = TcpStream::connect(server.local_addr()).unwrap();
    client.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Trickle 16 bytes at a time, never sending a newline.
    let mut reader = BufReader::new(client.try_clone().unwrap());
    let mut response = String::new();
    let mut write_failed = false;
    for _ in 0..32 {
        if client.write_all(&[b'x'; 16]).and_then(|_| client.flush()).is_err() {
            write_failed = true; // server already hung up on us
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    match reader.read_line(&mut response) {
        Ok(0) => {} // disconnected without a readable error: contained
        Ok(_) => {
            let parsed = parse(response.trim_end()).unwrap();
            assert_eq!(parsed.get("ok"), Some(&JsonValue::Bool(false)));
            assert_eq!(kind_of(&parsed), Some("line_too_long"));
        }
        // Writing into a closed socket earns an RST that can discard the
        // buffered error line; the failed write already proves the server
        // cut the connection, which is the property under test.
        Err(e) if write_failed => {
            eprintln!("error line lost to connection reset (acceptable): {e}");
        }
        Err(e) => panic!("server never reacted to the slow loris: {e}"),
    }

    // The server is still healthy for everyone else.
    let mut fresh = TcpStream::connect(server.local_addr()).unwrap();
    send_line(&mut fresh, r#"{"op":"ping"}"#);
    assert_eq!(read_response(&fresh).get("ok"), Some(&JsonValue::Bool(true)));
    server.shutdown();
}

#[test]
fn overload_recovers_once_the_queue_drains() {
    // Same saturation setup, but with a real worker: once the backlog
    // clears, previously-rejected clients succeed on retry.
    let engine = engine(ServeConfig {
        workers: 1,
        cache: false,
        max_queue: 2,
        ..ServeConfig::default()
    });
    let mut server = server(Arc::clone(&engine), ServerConfig::default());
    let addr = server.local_addr();

    // Hammer from several threads; some requests may be rejected.
    let clients: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = TcpStream::connect(addr).unwrap();
                send_line(
                    &mut c,
                    &format!(r#"{{"op":"predict","side":"tail","anchor":{i},"relation":0,"k":2}}"#),
                );
                let first = read_response(&c);
                if first.get("ok") == Some(&JsonValue::Bool(true)) {
                    return true;
                }
                assert_eq!(kind_of(&first), Some("overloaded"), "unexpected failure: {first:?}");
                // Retry with increasing, client-staggered backoff. A fixed
                // shared delay would make every rejected client's retry
                // land in the same instant and re-trip the bound (observed
                // on single-core runners); eventual success is the
                // property, not success on one synchronized retry.
                for attempt in 1..=10u64 {
                    std::thread::sleep(Duration::from_millis(50 * attempt + 17 * i as u64));
                    send_line(
                        &mut c,
                        &format!(
                            r#"{{"op":"predict","side":"tail","anchor":{i},"relation":0,"k":2}}"#
                        ),
                    );
                    let retry = read_response(&c);
                    if retry.get("ok") == Some(&JsonValue::Bool(true)) {
                        return true;
                    }
                    assert_eq!(kind_of(&retry), Some("overloaded"), "unexpected failure: {retry:?}");
                }
                false
            })
        })
        .collect();
    for handle in clients {
        assert!(handle.join().unwrap(), "a client failed even after the queue drained");
    }
    server.shutdown();
}

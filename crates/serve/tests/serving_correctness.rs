//! The serving engine's correctness contract, end to end:
//!
//! 1. batched + cached answers are **identical** (same ids, same order,
//!    same tie policy, bitwise-equal scores) to the naive per-query
//!    reference path, on random models and random query mixes;
//! 2. a snapshot hot-swap under concurrent load never serves a stale
//!    cached answer — every response provably belongs to the snapshot of
//!    the epoch it reports, and once the swap lands only new-epoch
//!    answers appear;
//! 3. the TCP frontend survives concurrent clients and shuts down
//!    cleanly with all threads joined.

use mei_core::{MultiEmbedModel, WeightPreset};
use mei_eval::{top_k_reference, Side};
use mei_kg::{EntityId, RelationId, Triple, TripleStore};
use mei_serve::{Engine, ServeConfig, Server, Snapshot};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

const NUM_ENTITIES: usize = 40;
const NUM_RELATIONS: usize = 4;

fn random_model(seed: u64) -> MultiEmbedModel {
    let mut rng = StdRng::seed_from_u64(seed);
    MultiEmbedModel::from_preset(WeightPreset::ComplEx, NUM_ENTITIES, NUM_RELATIONS, 6, &mut rng)
}

fn random_exclusions(seed: u64, count: usize) -> TripleStore {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    (0..count)
        .map(|_| {
            Triple::new(
                rng.gen_range(0..NUM_ENTITIES as u32),
                rng.gen_range(0..NUM_ENTITIES as u32),
                rng.gen_range(0..NUM_RELATIONS as u32),
            )
        })
        .collect()
}

fn query_strategy() -> impl Strategy<Value = (bool, u32, u32, usize)> {
    (
        proptest::bool::ANY,
        0..NUM_ENTITIES as u32,
        0..NUM_RELATIONS as u32,
        0usize..NUM_ENTITIES + 2,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random model, random exclusion set, random query mix (both sides,
    /// duplicate queries to exercise the cache and in-batch dedup, k from
    /// 0 to beyond the vocabulary): every engine answer must equal the
    /// naive reference answer element for element.
    #[test]
    fn batched_and_cached_answers_match_the_reference(
        seed in 0u64..1_000,
        queries in proptest::collection::vec(query_strategy(), 1..24),
    ) {
        let exclude = random_exclusions(seed, 30);
        let reference_model = random_model(seed);
        let engine = Engine::start(
            Snapshot::with_ids(random_model(seed), exclude.clone()),
            ServeConfig::default(),
        );
        for &(tail, anchor, relation, k) in &queries {
            let side = if tail { Side::Tail } else { Side::Head };
            let (anchor, relation) = (EntityId(anchor), RelationId(relation));
            let got = engine.predict(side, anchor, relation, k).unwrap();
            let want = top_k_reference(&reference_model, side, anchor, relation, k, &exclude);
            // Same ids, same order, bitwise-equal scores (f32 == is exact).
            prop_assert_eq!(&*got.results, &want);
        }
        engine.shutdown();
    }
}

/// Many threads hammer the same small query set while the main thread
/// swaps snapshots. Every answer must match the reference answer of the
/// snapshot whose epoch it reports (no cross-epoch mixing), and once the
/// swap is done, re-asking every query must yield only new-epoch answers
/// equal to the new model's reference — i.e. no stale cache entry
/// survives the epoch bump.
#[test]
fn hot_swap_under_load_never_serves_stale_answers() {
    let exclude = random_exclusions(99, 25);
    let models: Vec<MultiEmbedModel> = (0..3).map(|i| random_model(1000 + i)).collect();

    let engine = Arc::new(Engine::start(
        Snapshot::with_ids(random_model(1000), exclude.clone()),
        ServeConfig { workers: 2, ..ServeConfig::default() },
    ));

    // Precompute the reference answer for every (epoch, query).
    let queries: Vec<(Side, EntityId, RelationId, usize)> = (0..NUM_ENTITIES as u32)
        .flat_map(|e| {
            [(Side::Tail, EntityId(e), RelationId(e % 4), 5), (Side::Head, EntityId(e), RelationId((e + 1) % 4), 5)]
        })
        .collect();
    let reference: Vec<Vec<Vec<(EntityId, f32)>>> = models
        .iter()
        .map(|m| {
            queries
                .iter()
                .map(|&(side, a, r, k)| top_k_reference(m, side, a, r, k, &exclude))
                .collect()
        })
        .collect();
    let reference = Arc::new(reference);
    let queries = Arc::new(queries);

    let clients: Vec<_> = (0..4)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let queries = Arc::clone(&queries);
            let reference = Arc::clone(&reference);
            std::thread::spawn(move || {
                for round in 0..40 {
                    let (side, a, r, k) = queries[(t * 13 + round * 7) % queries.len()];
                    let got = engine.predict(side, a, r, k).unwrap();
                    let epoch = got.epoch as usize;
                    assert!(epoch < reference.len(), "epoch {epoch} out of range");
                    assert_eq!(
                        *got.results, reference[epoch][queries.iter().position(|q| *q == (side, a, r, k)).unwrap()],
                        "answer for epoch {epoch} does not match that snapshot's reference"
                    );
                }
            })
        })
        .collect();

    // Two swaps while the clients are in flight.
    for next in 1..3usize {
        std::thread::sleep(std::time::Duration::from_millis(3));
        let epoch = engine
            .swap_snapshot(Snapshot::with_ids(random_model(1000 + next as u64), exclude.clone()))
            .unwrap();
        assert_eq!(epoch as usize, next);
    }

    for c in clients {
        c.join().unwrap();
    }

    // The dust has settled at epoch 2: every query must now answer with
    // epoch 2 and the final model's reference answer. A stale cache entry
    // from epoch 0 or 1 surviving the bumps would fail one of these.
    for (qi, &(side, a, r, k)) in queries.iter().enumerate() {
        let got = engine.predict(side, a, r, k).unwrap();
        assert_eq!(got.epoch, 2);
        assert_eq!(*got.results, reference[2][qi]);
    }
    // And asking again must hit the (fresh, epoch-2) cache.
    let again = engine.predict(queries[0].0, queries[0].1, queries[0].2, queries[0].3).unwrap();
    assert!(again.cached);
    assert_eq!(again.epoch, 2);
    engine.shutdown();
}

/// Concurrent TCP clients each stream a pipeline of predict requests with
/// client-side tags; every response must carry the right tag, parse, and
/// match the reference answer. Shutdown must join everything.
#[test]
fn tcp_server_handles_concurrent_clients_and_clean_shutdown() {
    let exclude = random_exclusions(7, 20);
    let reference_model = random_model(7);
    let engine = Arc::new(Engine::start(
        Snapshot::with_ids(random_model(7), exclude.clone()),
        ServeConfig { workers: 2, ..ServeConfig::default() },
    ));
    let mut server = Server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let clients: Vec<_> = (0..4)
        .map(|t| {
            let exclude = exclude.clone();
            let model = reference_model.clone();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                for i in 0..25u32 {
                    let anchor = (t * 11 + i) % NUM_ENTITIES as u32;
                    let relation = i % NUM_RELATIONS as u32;
                    let side = if i % 2 == 0 { "tail" } else { "head" };
                    let tag = t * 1000 + i;
                    writeln!(
                        writer,
                        r#"{{"op":"predict","side":"{side}","anchor":{anchor},"relation":{relation},"k":3,"id":{tag}}}"#
                    )
                    .unwrap();
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let v = mei_obs::json::parse(line.trim_end()).unwrap();
                    assert_eq!(v.get("ok"), Some(&mei_obs::JsonValue::Bool(true)), "{line}");
                    assert_eq!(v.get("id").and_then(|x| x.as_usize()), Some(tag as usize));
                    let want = top_k_reference(
                        &model,
                        if i % 2 == 0 { Side::Tail } else { Side::Head },
                        EntityId(anchor),
                        RelationId(relation),
                        3,
                        &exclude,
                    );
                    let results = v.get("results").and_then(|x| x.as_arr()).unwrap();
                    assert_eq!(results.len(), want.len());
                    for (got, (e, score)) in results.iter().zip(&want) {
                        assert_eq!(got.get("id").and_then(|x| x.as_usize()), Some(e.idx()));
                        let s = got.get("score").and_then(|x| x.as_f64()).unwrap();
                        // Scores cross a JSON round-trip; shortest-repr
                        // printing plus exact parse keeps f32 values intact.
                        assert_eq!(s as f32, *score);
                    }
                }
            })
        })
        .collect();

    for c in clients {
        c.join().unwrap();
    }

    let stats = engine.metrics_snapshot();
    let requests = stats
        .get("serve/requests")
        .and_then(|v| v.get("value"))
        .and_then(|v| v.as_usize())
        .unwrap();
    assert_eq!(requests, 4 * 25);

    server.shutdown();
    assert!(server.is_shutting_down());
}

//! First-order optimizers with sparse embedding-row updates.
//!
//! The paper trains with SGD whose learning rates are auto-tuned by Adam
//! (§5.3, citing Kingma & Ba). Embedding training touches only the few rows
//! present in a minibatch, so every optimizer here exposes a *sparse*
//! interface: the caller hands `(offset, params, grads)` for each touched
//! row and the optimizer maintains per-coordinate state at that offset.
//!
//! Provided optimizers: [`Sgd`], [`Momentum`], [`Adagrad`], [`Adam`].
//!
//! Every optimizer can also hand out a [`StepState`] — a thread-shareable
//! view of one optimization step that applies the *same* per-row update
//! (Adam rows go through the fused SIMD kernel
//! [`mei_math::adam_update_fast`], which is bit-identical to the scalar
//! loop) to disjoint rows from any number of threads. [`Optimizer::update`]
//! itself is implemented on top of the same per-row functions, so the
//! sequential and the fused/parallel paths cannot diverge by construction.
//!
//! # Example
//!
//! One sparse update of a two-coordinate "row" at offset 2 of a
//! six-parameter space:
//!
//! ```
//! use mei_optim::{Optimizer, Sgd};
//!
//! let mut opt = Sgd::new(6, 0.5);
//! let mut row = [1.0f32, 2.0];
//! opt.step_begin();
//! opt.update(2, &mut row, &[0.2, -0.4]);
//! assert_eq!(row, [0.9, 2.2]);
//! ```

#![warn(missing_docs)]

use mei_math::{adam_update_fast, AdamParams};

/// A complete snapshot of an optimizer's mutable state, sufficient to
/// rebuild the optimizer mid-run with bit-identical future updates.
///
/// `slots` holds the per-coordinate moment vectors in a fixed order per
/// optimizer: SGD has none, momentum has `[velocity]`, Adagrad has
/// `[accum]`, Adam has `[m, v]` (plus its step counter in `step`). The
/// training checkpoint format persists this verbatim so a resumed run
/// continues exactly where the interrupted one left off.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerState {
    /// Which optimizer produced this state.
    pub kind: OptimizerKind,
    /// Learning rate at snapshot time (decay schedules mutate it).
    pub lr: f32,
    /// Size of the flat parameter space ([`Optimizer::state_len`]).
    pub len: usize,
    /// Step counter (Adam bias correction); 0 for stateless optimizers.
    pub step: i32,
    /// Per-coordinate moment vectors, optimizer-specific order.
    pub slots: Vec<Vec<f32>>,
}

impl OptimizerState {
    /// Rebuilds the optimizer this state was exported from.
    ///
    /// Errors if the slot shapes are inconsistent with `kind` (e.g. a
    /// corrupted or truncated checkpoint that survived its checksum).
    pub fn build(&self) -> Result<Box<dyn Optimizer + Send>, String> {
        let expect_slots = |n: usize| -> Result<(), String> {
            if self.slots.len() != n {
                return Err(format!(
                    "optimizer state for {:?} must carry {n} slot(s), found {}",
                    self.kind,
                    self.slots.len()
                ));
            }
            if let Some(bad) = self.slots.iter().find(|s| s.len() != self.len) {
                return Err(format!(
                    "optimizer slot length {} disagrees with state_len {}",
                    bad.len(),
                    self.len
                ));
            }
            Ok(())
        };
        match self.kind {
            OptimizerKind::Sgd => {
                expect_slots(0)?;
                Ok(Box::new(Sgd { lr: self.lr, len: self.len }))
            }
            OptimizerKind::Momentum => {
                expect_slots(1)?;
                Ok(Box::new(Momentum { lr: self.lr, beta: 0.9, velocity: self.slots[0].clone() }))
            }
            OptimizerKind::Adagrad => {
                expect_slots(1)?;
                Ok(Box::new(Adagrad { lr: self.lr, eps: 1e-8, accum: self.slots[0].clone() }))
            }
            OptimizerKind::Adam => {
                expect_slots(2)?;
                Ok(Box::new(Adam {
                    lr: self.lr,
                    beta1: 0.9,
                    beta2: 0.999,
                    eps: 1e-8,
                    t: self.step,
                    m: self.slots[0].clone(),
                    v: self.slots[1].clone(),
                }))
            }
        }
    }
}

/// A first-order optimizer over a flat parameter space.
///
/// The full parameter vector is conceptually `f32[state_len]`; calls to
/// [`Optimizer::update`] address disjoint row slices by `offset`. Callers
/// must call [`Optimizer::step_begin`] once per optimization step (Adam's
/// bias correction depends on the step counter).
pub trait Optimizer {
    /// Marks the beginning of a new optimization step.
    fn step_begin(&mut self);

    /// Snapshots all mutable state for checkpointing; feeding the result
    /// to [`OptimizerState::build`] reproduces this optimizer exactly.
    fn export_state(&self) -> OptimizerState;

    /// Applies one update: `params ← params − f(grads)` where `params` is
    /// the slice starting at `offset` in the flat parameter space.
    ///
    /// # Panics
    /// Panics if `params.len() != grads.len()` or the slice exceeds the
    /// optimizer's state.
    fn update(&mut self, offset: usize, params: &mut [f32], grads: &[f32]);

    /// Borrows a thread-shareable view of the current optimization step.
    ///
    /// [`Optimizer::update`] is implemented on top of the same view, so
    /// `opt.update(o, p, g)` and
    /// `unsafe { opt.step_state().update_row(o, p, g) }` are bit-identical.
    /// See [`StepState::update_row`] for the disjointness contract that
    /// makes concurrent use sound.
    fn step_state(&mut self) -> StepState<'_>;

    /// Total size of the flat parameter space this optimizer serves.
    fn state_len(&self) -> usize;

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

// Per-row update rules shared by `Optimizer::update` and
// `StepState::update_row`. Keeping each rule in exactly one function is what
// makes the sequential and parallel step paths bit-identical by construction.

#[inline]
fn sgd_row(lr: f32, params: &mut [f32], grads: &[f32]) {
    for (p, g) in params.iter_mut().zip(grads) {
        *p -= lr * g;
    }
}

#[inline]
fn momentum_row(lr: f32, beta: f32, v: &mut [f32], params: &mut [f32], grads: &[f32]) {
    for i in 0..params.len() {
        v[i] = beta * v[i] + grads[i];
        params[i] -= lr * v[i];
    }
}

#[inline]
fn adagrad_row(lr: f32, eps: f32, a: &mut [f32], params: &mut [f32], grads: &[f32]) {
    for i in 0..params.len() {
        a[i] += grads[i] * grads[i];
        params[i] -= lr * grads[i] / (a[i].sqrt() + eps);
    }
}

/// Raw view of a moment vector that can be sliced into disjoint row ranges
/// from multiple threads. Only dereferenced via [`StepState::update_row`],
/// whose safety contract forbids overlapping rows.
struct RawSlice<'a> {
    ptr: *mut f32,
    len: usize,
    _borrow: std::marker::PhantomData<&'a mut [f32]>,
}

// SAFETY: the underlying storage is only touched through
// `StepState::update_row`, whose contract requires concurrent callers to
// address disjoint row ranges, so no element is ever aliased across threads.
unsafe impl Send for RawSlice<'_> {}
unsafe impl Sync for RawSlice<'_> {}

impl<'a> RawSlice<'a> {
    fn new(s: &'a mut [f32]) -> Self {
        Self { ptr: s.as_mut_ptr(), len: s.len(), _borrow: std::marker::PhantomData }
    }

    /// # Safety
    /// The returned slice must not overlap any other slice obtained from
    /// this `RawSlice` that is simultaneously live (disjoint offset ranges).
    #[allow(clippy::mut_from_ref)] // disjointness is the caller's contract
    unsafe fn slice(&self, offset: usize, len: usize) -> &mut [f32] {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "step: row slice out of range"
        );
        std::slice::from_raw_parts_mut(self.ptr.add(offset), len)
    }
}

enum StepInner<'a> {
    Sgd { lr: f32 },
    Momentum { lr: f32, beta: f32, velocity: RawSlice<'a> },
    Adagrad { lr: f32, eps: f32, accum: RawSlice<'a> },
    Adam { h: AdamParams, m: RawSlice<'a>, v: RawSlice<'a> },
}

/// A borrowed, thread-shareable view of one optimization step.
///
/// Obtained from [`Optimizer::step_state`]; the exclusive borrow means it
/// lives for at most one step (no `step_begin` can run while it is alive).
/// The parallel trainer shares one `StepState` across its workers, each
/// applying [`StepState::update_row`] to rows no other worker touches.
///
/// The per-row math is the very code [`Optimizer::update`] runs (Adam rows
/// go through [`mei_math::adam_update_fast`], bit-identical to the scalar
/// loop by test), so a set of `update_row` calls over disjoint rows yields
/// bit-identical parameters and moments regardless of call order or thread
/// count.
pub struct StepState<'a> {
    len: usize,
    inner: StepInner<'a>,
}

impl StepState<'_> {
    /// Applies one row update exactly as [`Optimizer::update`] would.
    ///
    /// # Safety
    /// Concurrent callers must address disjoint ranges: for any two calls
    /// live at the same time, `offset..offset + params.len()` must not
    /// overlap (and `params` must point into disjoint storage). The moment
    /// state for a row is written without synchronization.
    ///
    /// # Panics
    /// Panics if `params.len() != grads.len()` or the addressed range
    /// exceeds the optimizer's state length.
    pub unsafe fn update_row(&self, offset: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        assert!(
            offset.checked_add(params.len()).is_some_and(|end| end <= self.len),
            "step: row slice out of range"
        );
        match &self.inner {
            StepInner::Sgd { lr } => sgd_row(*lr, params, grads),
            StepInner::Momentum { lr, beta, velocity } => {
                momentum_row(*lr, *beta, velocity.slice(offset, params.len()), params, grads)
            }
            StepInner::Adagrad { lr, eps, accum } => {
                adagrad_row(*lr, *eps, accum.slice(offset, params.len()), params, grads)
            }
            StepInner::Adam { h, m, v } => adam_update_fast(
                params,
                grads,
                m.slice(offset, params.len()),
                v.slice(offset, params.len()),
                h,
            ),
        }
    }
}

/// Plain stochastic gradient descent: `θ ← θ − lr·g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    len: usize,
}

impl Sgd {
    /// Creates SGD over `len` parameters.
    pub fn new(len: usize, lr: f32) -> Self {
        Self { lr, len }
    }
}

impl Optimizer for Sgd {
    fn step_begin(&mut self) {}

    fn export_state(&self) -> OptimizerState {
        OptimizerState { kind: OptimizerKind::Sgd, lr: self.lr, len: self.len, step: 0, slots: vec![] }
    }

    fn update(&mut self, offset: usize, params: &mut [f32], grads: &[f32]) {
        // SAFETY: exclusive `&mut self` — no concurrent row updates exist.
        unsafe { self.step_state().update_row(offset, params, grads) }
    }

    fn step_state(&mut self) -> StepState<'_> {
        StepState { len: self.len, inner: StepInner::Sgd { lr: self.lr } }
    }

    fn state_len(&self) -> usize {
        self.len
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// SGD with classical momentum: `v ← β·v + g; θ ← θ − lr·v`.
#[derive(Debug, Clone)]
pub struct Momentum {
    lr: f32,
    beta: f32,
    velocity: Vec<f32>,
}

impl Momentum {
    /// Creates momentum SGD over `len` parameters.
    pub fn new(len: usize, lr: f32, beta: f32) -> Self {
        Self { lr, beta, velocity: vec![0.0; len] }
    }
}

impl Optimizer for Momentum {
    fn step_begin(&mut self) {}

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: OptimizerKind::Momentum,
            lr: self.lr,
            len: self.velocity.len(),
            step: 0,
            slots: vec![self.velocity.clone()],
        }
    }

    fn update(&mut self, offset: usize, params: &mut [f32], grads: &[f32]) {
        // SAFETY: exclusive `&mut self` — no concurrent row updates exist.
        unsafe { self.step_state().update_row(offset, params, grads) }
    }

    fn step_state(&mut self) -> StepState<'_> {
        StepState {
            len: self.velocity.len(),
            inner: StepInner::Momentum {
                lr: self.lr,
                beta: self.beta,
                velocity: RawSlice::new(&mut self.velocity),
            },
        }
    }

    fn state_len(&self) -> usize {
        self.velocity.len()
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adagrad: `a ← a + g²; θ ← θ − lr·g / (√a + ε)`.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: Vec<f32>,
}

impl Adagrad {
    /// Creates Adagrad over `len` parameters.
    pub fn new(len: usize, lr: f32) -> Self {
        Self { lr, eps: 1e-8, accum: vec![0.0; len] }
    }
}

impl Optimizer for Adagrad {
    fn step_begin(&mut self) {}

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: OptimizerKind::Adagrad,
            lr: self.lr,
            len: self.accum.len(),
            step: 0,
            slots: vec![self.accum.clone()],
        }
    }

    fn update(&mut self, offset: usize, params: &mut [f32], grads: &[f32]) {
        // SAFETY: exclusive `&mut self` — no concurrent row updates exist.
        unsafe { self.step_state().update_row(offset, params, grads) }
    }

    fn step_state(&mut self) -> StepState<'_> {
        StepState {
            len: self.accum.len(),
            inner: StepInner::Adagrad {
                lr: self.lr,
                eps: self.eps,
                accum: RawSlice::new(&mut self.accum),
            },
        }
    }

    fn state_len(&self) -> usize {
        self.accum.len()
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2014) — the paper's optimizer.
///
/// Sparse variant: moments are updated only for rows that receive
/// gradients; bias correction uses the global step counter, which is the
/// standard "sparse Adam" approximation used by embedding systems.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Creates Adam over `len` parameters with the canonical defaults
    /// β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(len: usize, lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: vec![0.0; len], v: vec![0.0; len] }
    }

    /// Overrides β₁/β₂.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Step counter (number of `step_begin` calls so far).
    pub fn step_count(&self) -> i32 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step_begin(&mut self) {
        self.t += 1;
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: OptimizerKind::Adam,
            lr: self.lr,
            len: self.m.len(),
            step: self.t,
            slots: vec![self.m.clone(), self.v.clone()],
        }
    }

    fn update(&mut self, offset: usize, params: &mut [f32], grads: &[f32]) {
        // SAFETY: exclusive `&mut self` — no concurrent row updates exist.
        unsafe { self.step_state().update_row(offset, params, grads) }
    }

    fn step_state(&mut self) -> StepState<'_> {
        assert!(self.t > 0, "Adam::update called before step_begin");
        let h = AdamParams {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            bc1: 1.0 - self.beta1.powi(self.t),
            bc2: 1.0 - self.beta2.powi(self.t),
        };
        StepState {
            len: self.m.len(),
            inner: StepInner::Adam {
                h,
                m: RawSlice::new(&mut self.m),
                v: RawSlice::new(&mut self.v),
            },
        }
    }

    fn state_len(&self) -> usize {
        self.m.len()
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Which optimizer to construct — a plain-data config used by trainers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd,
    /// SGD with momentum 0.9.
    Momentum,
    /// Adagrad.
    Adagrad,
    /// Adam (the paper's choice).
    Adam,
}

impl OptimizerKind {
    /// Builds the optimizer over `len` parameters at learning rate `lr`.
    pub fn build(self, len: usize, lr: f32) -> Box<dyn Optimizer + Send> {
        match self {
            OptimizerKind::Sgd => Box::new(Sgd::new(len, lr)),
            OptimizerKind::Momentum => Box::new(Momentum::new(len, lr, 0.9)),
            OptimizerKind::Adagrad => Box::new(Adagrad::new(len, lr)),
            OptimizerKind::Adam => Box::new(Adam::new(len, lr)),
        }
    }

    /// Stable single-byte tag for on-disk formats. The values are part of
    /// the checkpoint wire format — never renumber them.
    pub fn tag(self) -> u8 {
        match self {
            OptimizerKind::Sgd => 0,
            OptimizerKind::Momentum => 1,
            OptimizerKind::Adagrad => 2,
            OptimizerKind::Adam => 3,
        }
    }

    /// Inverse of [`OptimizerKind::tag`]; `None` for unknown bytes.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(OptimizerKind::Sgd),
            1 => Some(OptimizerKind::Momentum),
            2 => Some(OptimizerKind::Adagrad),
            3 => Some(OptimizerKind::Adam),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_single_step() {
        let mut opt = Sgd::new(2, 0.1);
        let mut p = [1.0f32, -2.0];
        opt.step_begin();
        opt.update(0, &mut p, &[0.5, -1.0]);
        assert_eq!(p, [0.95, -1.9]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Momentum::new(1, 0.1, 0.9);
        let mut p = [0.0f32];
        opt.step_begin();
        opt.update(0, &mut p, &[1.0]); // v=1, p=-0.1
        opt.step_begin();
        opt.update(0, &mut p, &[1.0]); // v=1.9, p=-0.1-0.19
        assert!((p[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn adagrad_shrinks_effective_rate() {
        let mut opt = Adagrad::new(1, 1.0);
        let mut p = [0.0f32];
        opt.step_begin();
        opt.update(0, &mut p, &[2.0]);
        let first = -p[0]; // ≈ 1.0 (2 / sqrt(4))
        let before = p[0];
        opt.step_begin();
        opt.update(0, &mut p, &[2.0]);
        let second = before - p[0]; // 2 / sqrt(8) ≈ 0.707
        assert!((first - 1.0).abs() < 1e-4);
        assert!(second < first);
    }

    #[test]
    fn adam_first_step_is_lr_times_sign() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let mut opt = Adam::new(2, 0.01);
        let mut p = [0.0f32, 0.0];
        opt.step_begin();
        opt.update(0, &mut p, &[3.7, -0.002]);
        assert!((p[0] + 0.01).abs() < 1e-4, "{}", p[0]);
        assert!((p[1] - 0.01).abs() < 1e-4, "{}", p[1]);
    }

    #[test]
    #[should_panic(expected = "before step_begin")]
    fn adam_requires_step_begin() {
        let mut opt = Adam::new(1, 0.01);
        let mut p = [0.0f32];
        opt.update(0, &mut p, &[1.0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize (θ − 3)²
        let mut opt = Adam::new(1, 0.1);
        let mut p = [0.0f32];
        for _ in 0..500 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step_begin();
            opt.update(0, &mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "converged to {}", p[0]);
    }

    #[test]
    fn sparse_offsets_address_disjoint_state() {
        let mut opt = Adam::new(4, 0.1);
        let mut p = [0.0f32; 4];
        opt.step_begin();
        opt.update(2, &mut p[2..], &[1.0, 1.0]);
        // Rows 0–1 untouched, their moments remain zero.
        opt.step_begin();
        let mut front = [p[0], p[1]];
        opt.update(0, &mut front, &[0.0, 0.0]);
        assert_eq!(front[0], 0.0);
        assert!(p[2] < 0.0 && p[3] < 0.0);
    }

    #[test]
    fn kind_builds_all_variants() {
        for kind in [OptimizerKind::Sgd, OptimizerKind::Momentum, OptimizerKind::Adagrad, OptimizerKind::Adam]
        {
            let mut o = kind.build(3, 0.05);
            assert_eq!(o.state_len(), 3);
            assert!((o.learning_rate() - 0.05).abs() < 1e-9);
            o.set_learning_rate(0.01);
            assert!((o.learning_rate() - 0.01).abs() < 1e-9);
            let mut p = [1.0f32; 3];
            o.step_begin();
            o.update(0, &mut p, &[1.0; 3]);
            assert!(p.iter().all(|x| *x < 1.0));
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_slice_panics() {
        let mut opt = Sgd::new(2, 0.1);
        let mut p = [0.0f32; 3];
        opt.step_begin();
        opt.update(0, &mut p, &[1.0; 3]);
    }

    #[test]
    fn state_round_trip_resumes_identical_updates() {
        // Partially train an optimizer, export, rebuild, and check that
        // both copies produce bit-identical parameters from here on.
        for kind in [OptimizerKind::Sgd, OptimizerKind::Momentum, OptimizerKind::Adagrad, OptimizerKind::Adam]
        {
            let mut original = kind.build(4, 0.05);
            let mut p1 = [0.3f32, -0.7, 1.1, 0.05];
            for step in 0..13 {
                let g: Vec<f32> = p1.iter().map(|x| 0.1 * x + step as f32 * 1e-3).collect();
                original.step_begin();
                original.update(0, &mut p1, &g);
            }
            original.set_learning_rate(0.031);

            let state = original.export_state();
            assert_eq!(state.kind, kind);
            assert_eq!(state.len, 4);
            let mut restored = state.build().expect("valid state rebuilds");
            assert_eq!(restored.state_len(), original.state_len());
            assert_eq!(restored.learning_rate().to_bits(), original.learning_rate().to_bits());

            let mut p2 = p1;
            for step in 0..17 {
                let g: Vec<f32> = p1.iter().map(|x| -0.2 * x + step as f32 * 2e-3).collect();
                original.step_begin();
                original.update(0, &mut p1, &g);
                restored.step_begin();
                restored.update(0, &mut p2, &g);
            }
            for (a, b) in p1.iter().zip(&p2) {
                assert_eq!(a.to_bits(), b.to_bits(), "{kind:?} diverged after restore");
            }
        }
    }

    #[test]
    fn corrupt_state_is_rejected_not_trusted() {
        let bad_slot_count = OptimizerState {
            kind: OptimizerKind::Adam,
            lr: 0.01,
            len: 3,
            step: 5,
            slots: vec![vec![0.0; 3]],
        };
        assert!(bad_slot_count.build().is_err());

        let bad_slot_len = OptimizerState {
            kind: OptimizerKind::Adagrad,
            lr: 0.01,
            len: 3,
            step: 0,
            slots: vec![vec![0.0; 2]],
        };
        assert!(bad_slot_len.build().is_err());
    }

    /// The pre-StepState scalar Adam row update, kept verbatim as the
    /// reference the fused path is tested against.
    #[allow(clippy::too_many_arguments)] // verbatim historical signature
    fn adam_reference_row(
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        t: i32,
        m: &mut [f32],
        v: &mut [f32],
        params: &mut [f32],
        grads: &[f32],
    ) {
        let bc1 = 1.0 - beta1.powi(t);
        let bc2 = 1.0 - beta2.powi(t);
        for i in 0..params.len() {
            let g = grads[i];
            m[i] = beta1 * m[i] + (1.0 - beta1) * g;
            v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what} diverged at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn adam_update_matches_scalar_reference_bitwise() {
        // Fused-kernel Adam vs the original two-line scalar loop, over many
        // steps so moments accumulate history.
        let mut opt = Adam::new(8, 0.013);
        let mut p = [0.9f32, -0.4, 1e-3, 7.0, -2.5, 0.0, 1e4, -1e-4];
        let mut rp = p;
        let (mut rm, mut rv) = (vec![0.0f32; 8], vec![0.0f32; 8]);
        for step in 1..=37 {
            let g: Vec<f32> =
                (0..8).map(|i| (step as f32 * 0.11 + i as f32 * 0.7).sin() * 0.3).collect();
            opt.step_begin();
            opt.update(0, &mut p, &g);
            adam_reference_row(0.013, 0.9, 0.999, 1e-8, step, &mut rm, &mut rv, &mut rp, &g);
        }
        assert_bits_eq(&p, &rp, "params");
        let state = opt.export_state();
        assert_bits_eq(&state.slots[0], &rm, "first moment");
        assert_bits_eq(&state.slots[1], &rv, "second moment");
    }

    #[test]
    fn adam_matches_reference_on_adversarial_inputs() {
        // Denormals, signed zeros, huge magnitudes, and all-zero gradients on
        // zero moments must all round-trip bit-identically through the fused
        // kernel path.
        let grads_cases: [&[f32]; 3] = [
            &[1e-40, -1e-42, 0.0, -0.0, 3.4e38, -3.4e38, 1e-45, 2.0],
            &[0.0; 8],
            &[-0.0, 0.0, 1e-39, -1e-39, 5e-41, 1.0, -1.0, 0.5],
        ];
        for (case, grads) in grads_cases.iter().enumerate() {
            let mut opt = Adam::new(8, 0.01);
            let mut p = [1e-40f32, -0.0, 0.0, 1e38, -1e-38, 0.5, -0.5, 2e-44];
            let mut rp = p;
            let (mut rm, mut rv) = (vec![0.0f32; 8], vec![0.0f32; 8]);
            for step in 1..=3 {
                opt.step_begin();
                opt.update(0, &mut p, grads);
                adam_reference_row(0.01, 0.9, 0.999, 1e-8, step, &mut rm, &mut rv, &mut rp, grads);
            }
            assert_bits_eq(&p, &rp, &format!("case {case} params"));
            let state = opt.export_state();
            assert_bits_eq(&state.slots[0], &rm, &format!("case {case} m"));
            assert_bits_eq(&state.slots[1], &rv, &format!("case {case} v"));
        }
    }

    #[test]
    fn lazy_catch_up_matches_reference_after_idle_steps() {
        // A row untouched for many global steps keeps its moments frozen; the
        // next touch uses the *global* step counter for bias correction.
        // Verify the fused path reproduces that sparse-Adam semantics bit-for-
        // bit against the scalar reference.
        let mut opt = Adam::new(4, 0.02);
        let mut hot = [0.5f32, -0.5];
        let mut idle = [1.5f32, -1.5];
        let (mut rm, mut rv) = (vec![0.1f32, -0.2], vec![0.3f32, 0.4]);
        let mut ridle = idle;
        // Seed the idle row's moments, then leave it untouched for 40 steps.
        opt.step_begin(); // t = 1
        opt.update(2, &mut idle, &[1.0, -2.0]);
        adam_reference_row(0.02, 0.9, 0.999, 1e-8, 1, &mut rm, &mut rv, &mut ridle, &[1.0, -2.0]);
        // The reference starts from Adam's zero moments, so re-sync it.
        let state = opt.export_state();
        rm.copy_from_slice(&state.slots[0][2..4]);
        rv.copy_from_slice(&state.slots[1][2..4]);
        ridle = idle;
        for _ in 0..40 {
            opt.step_begin();
            opt.update(0, &mut hot, &[0.3, 0.1]);
        }
        opt.step_begin(); // t = 42
        opt.update(2, &mut idle, &[-0.7, 0.9]);
        adam_reference_row(0.02, 0.9, 0.999, 1e-8, 42, &mut rm, &mut rv, &mut ridle, &[-0.7, 0.9]);
        assert_bits_eq(&idle, &ridle, "idle row params");
        let state = opt.export_state();
        assert_bits_eq(&state.slots[0][2..4], &rm, "idle row m");
        assert_bits_eq(&state.slots[1][2..4], &rv, "idle row v");
    }

    #[test]
    fn step_state_rows_are_order_and_thread_independent() {
        // One step over 8 rows applied (a) sequentially in order, (b)
        // sequentially in reverse, (c) concurrently from 4 threads via a
        // shared StepState — all three must agree bitwise on params and
        // exported state.
        const ROWS: usize = 8;
        const DIM: usize = 5;
        let grads: Vec<Vec<f32>> = (0..ROWS)
            .map(|r| (0..DIM).map(|i| ((r * DIM + i) as f32 * 0.37).cos() * 0.2).collect())
            .collect();
        let init: Vec<f32> = (0..ROWS * DIM).map(|i| (i as f32 * 0.11).sin()).collect();
        for kind in
            [OptimizerKind::Sgd, OptimizerKind::Momentum, OptimizerKind::Adagrad, OptimizerKind::Adam]
        {
            let run = |mode: usize| -> (Vec<f32>, OptimizerState) {
                let mut opt = kind.build(ROWS * DIM, 0.05);
                let mut params = init.clone();
                // A warmup step so stateful optimizers carry history.
                opt.step_begin();
                for r in 0..ROWS {
                    opt.update(r * DIM, &mut params[r * DIM..(r + 1) * DIM], &grads[r]);
                }
                opt.step_begin();
                match mode {
                    0 => {
                        for r in 0..ROWS {
                            opt.update(r * DIM, &mut params[r * DIM..(r + 1) * DIM], &grads[r]);
                        }
                    }
                    1 => {
                        let step = opt.step_state();
                        for r in (0..ROWS).rev() {
                            // SAFETY: rows are disjoint DIM-length slices.
                            unsafe {
                                step.update_row(
                                    r * DIM,
                                    &mut params[r * DIM..(r + 1) * DIM],
                                    &grads[r],
                                )
                            };
                        }
                    }
                    _ => {
                        let step = opt.step_state();
                        let mut chunks: Vec<&mut [f32]> = params.chunks_mut(2 * DIM).collect();
                        std::thread::scope(|s| {
                            for (w, chunk) in chunks.iter_mut().enumerate() {
                                let step = &step;
                                let grads = &grads;
                                let base = w * 2;
                                s.spawn(move || {
                                    for (j, row) in chunk.chunks_mut(DIM).enumerate() {
                                        let r = base + j;
                                        // SAFETY: each worker owns rows
                                        // base..base+2; ranges are disjoint.
                                        unsafe { step.update_row(r * DIM, row, &grads[r]) };
                                    }
                                });
                            }
                        });
                    }
                }
                (params, opt.export_state())
            };
            let (p0, s0) = run(0);
            let (p1, s1) = run(1);
            let (p2, s2) = run(2);
            assert_bits_eq(&p0, &p1, &format!("{kind:?} reverse order"));
            assert_bits_eq(&p0, &p2, &format!("{kind:?} threaded"));
            assert_eq!(s0, s1, "{kind:?} state (reverse)");
            assert_eq!(s0, s2, "{kind:?} state (threaded)");
        }
    }

    #[test]
    #[should_panic(expected = "row slice out of range")]
    fn step_state_rejects_out_of_range_rows() {
        let mut opt = Adam::new(4, 0.01);
        opt.step_begin();
        let step = opt.step_state();
        let mut p = [0.0f32; 3];
        // SAFETY: single-threaded; the call must panic on the range check.
        unsafe { step.update_row(2, &mut p, &[1.0; 3]) };
    }

    #[test]
    fn kind_tags_are_stable_and_invertible() {
        for kind in [OptimizerKind::Sgd, OptimizerKind::Momentum, OptimizerKind::Adagrad, OptimizerKind::Adam]
        {
            assert_eq!(OptimizerKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(OptimizerKind::from_tag(200), None);
    }
}

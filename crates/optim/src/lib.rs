//! First-order optimizers with sparse embedding-row updates.
//!
//! The paper trains with SGD whose learning rates are auto-tuned by Adam
//! (§5.3, citing Kingma & Ba). Embedding training touches only the few rows
//! present in a minibatch, so every optimizer here exposes a *sparse*
//! interface: the caller hands `(offset, params, grads)` for each touched
//! row and the optimizer maintains per-coordinate state at that offset.
//!
//! Provided optimizers: [`Sgd`], [`Momentum`], [`Adagrad`], [`Adam`].

#![warn(missing_docs)]

/// A first-order optimizer over a flat parameter space.
///
/// The full parameter vector is conceptually `f32[state_len]`; calls to
/// [`Optimizer::update`] address disjoint row slices by `offset`. Callers
/// must call [`Optimizer::step_begin`] once per optimization step (Adam's
/// bias correction depends on the step counter).
pub trait Optimizer {
    /// Marks the beginning of a new optimization step.
    fn step_begin(&mut self);

    /// Applies one update: `params ← params − f(grads)` where `params` is
    /// the slice starting at `offset` in the flat parameter space.
    ///
    /// # Panics
    /// Panics if `params.len() != grads.len()` or the slice exceeds the
    /// optimizer's state.
    fn update(&mut self, offset: usize, params: &mut [f32], grads: &[f32]);

    /// Total size of the flat parameter space this optimizer serves.
    fn state_len(&self) -> usize;

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent: `θ ← θ − lr·g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    len: usize,
}

impl Sgd {
    /// Creates SGD over `len` parameters.
    pub fn new(len: usize, lr: f32) -> Self {
        Self { lr, len }
    }
}

impl Optimizer for Sgd {
    fn step_begin(&mut self) {}

    fn update(&mut self, offset: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        assert!(offset + params.len() <= self.len, "sgd: slice out of range");
        for (p, g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }

    fn state_len(&self) -> usize {
        self.len
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// SGD with classical momentum: `v ← β·v + g; θ ← θ − lr·v`.
#[derive(Debug, Clone)]
pub struct Momentum {
    lr: f32,
    beta: f32,
    velocity: Vec<f32>,
}

impl Momentum {
    /// Creates momentum SGD over `len` parameters.
    pub fn new(len: usize, lr: f32, beta: f32) -> Self {
        Self { lr, beta, velocity: vec![0.0; len] }
    }
}

impl Optimizer for Momentum {
    fn step_begin(&mut self) {}

    fn update(&mut self, offset: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        let v = &mut self.velocity[offset..offset + params.len()];
        for i in 0..params.len() {
            v[i] = self.beta * v[i] + grads[i];
            params[i] -= self.lr * v[i];
        }
    }

    fn state_len(&self) -> usize {
        self.velocity.len()
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adagrad: `a ← a + g²; θ ← θ − lr·g / (√a + ε)`.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    accum: Vec<f32>,
}

impl Adagrad {
    /// Creates Adagrad over `len` parameters.
    pub fn new(len: usize, lr: f32) -> Self {
        Self { lr, eps: 1e-8, accum: vec![0.0; len] }
    }
}

impl Optimizer for Adagrad {
    fn step_begin(&mut self) {}

    fn update(&mut self, offset: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        let a = &mut self.accum[offset..offset + params.len()];
        for i in 0..params.len() {
            a[i] += grads[i] * grads[i];
            params[i] -= self.lr * grads[i] / (a[i].sqrt() + self.eps);
        }
    }

    fn state_len(&self) -> usize {
        self.accum.len()
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2014) — the paper's optimizer.
///
/// Sparse variant: moments are updated only for rows that receive
/// gradients; bias correction uses the global step counter, which is the
/// standard "sparse Adam" approximation used by embedding systems.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Creates Adam over `len` parameters with the canonical defaults
    /// β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(len: usize, lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: vec![0.0; len], v: vec![0.0; len] }
    }

    /// Overrides β₁/β₂.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Step counter (number of `step_begin` calls so far).
    pub fn step_count(&self) -> i32 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step_begin(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, offset: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        assert!(self.t > 0, "Adam::update called before step_begin");
        let m = &mut self.m[offset..offset + params.len()];
        let v = &mut self.v[offset..offset + params.len()];
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for i in 0..params.len() {
            let g = grads[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn state_len(&self) -> usize {
        self.m.len()
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Which optimizer to construct — a plain-data config used by trainers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain SGD.
    Sgd,
    /// SGD with momentum 0.9.
    Momentum,
    /// Adagrad.
    Adagrad,
    /// Adam (the paper's choice).
    Adam,
}

impl OptimizerKind {
    /// Builds the optimizer over `len` parameters at learning rate `lr`.
    pub fn build(self, len: usize, lr: f32) -> Box<dyn Optimizer + Send> {
        match self {
            OptimizerKind::Sgd => Box::new(Sgd::new(len, lr)),
            OptimizerKind::Momentum => Box::new(Momentum::new(len, lr, 0.9)),
            OptimizerKind::Adagrad => Box::new(Adagrad::new(len, lr)),
            OptimizerKind::Adam => Box::new(Adam::new(len, lr)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_single_step() {
        let mut opt = Sgd::new(2, 0.1);
        let mut p = [1.0f32, -2.0];
        opt.step_begin();
        opt.update(0, &mut p, &[0.5, -1.0]);
        assert_eq!(p, [0.95, -1.9]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Momentum::new(1, 0.1, 0.9);
        let mut p = [0.0f32];
        opt.step_begin();
        opt.update(0, &mut p, &[1.0]); // v=1, p=-0.1
        opt.step_begin();
        opt.update(0, &mut p, &[1.0]); // v=1.9, p=-0.1-0.19
        assert!((p[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn adagrad_shrinks_effective_rate() {
        let mut opt = Adagrad::new(1, 1.0);
        let mut p = [0.0f32];
        opt.step_begin();
        opt.update(0, &mut p, &[2.0]);
        let first = -p[0]; // ≈ 1.0 (2 / sqrt(4))
        let before = p[0];
        opt.step_begin();
        opt.update(0, &mut p, &[2.0]);
        let second = before - p[0]; // 2 / sqrt(8) ≈ 0.707
        assert!((first - 1.0).abs() < 1e-4);
        assert!(second < first);
    }

    #[test]
    fn adam_first_step_is_lr_times_sign() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let mut opt = Adam::new(2, 0.01);
        let mut p = [0.0f32, 0.0];
        opt.step_begin();
        opt.update(0, &mut p, &[3.7, -0.002]);
        assert!((p[0] + 0.01).abs() < 1e-4, "{}", p[0]);
        assert!((p[1] - 0.01).abs() < 1e-4, "{}", p[1]);
    }

    #[test]
    #[should_panic(expected = "before step_begin")]
    fn adam_requires_step_begin() {
        let mut opt = Adam::new(1, 0.01);
        let mut p = [0.0f32];
        opt.update(0, &mut p, &[1.0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize (θ − 3)²
        let mut opt = Adam::new(1, 0.1);
        let mut p = [0.0f32];
        for _ in 0..500 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step_begin();
            opt.update(0, &mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "converged to {}", p[0]);
    }

    #[test]
    fn sparse_offsets_address_disjoint_state() {
        let mut opt = Adam::new(4, 0.1);
        let mut p = [0.0f32; 4];
        opt.step_begin();
        opt.update(2, &mut p[2..], &[1.0, 1.0]);
        // Rows 0–1 untouched, their moments remain zero.
        opt.step_begin();
        let mut front = [p[0], p[1]];
        opt.update(0, &mut front, &[0.0, 0.0]);
        assert_eq!(front[0], 0.0);
        assert!(p[2] < 0.0 && p[3] < 0.0);
    }

    #[test]
    fn kind_builds_all_variants() {
        for kind in [OptimizerKind::Sgd, OptimizerKind::Momentum, OptimizerKind::Adagrad, OptimizerKind::Adam]
        {
            let mut o = kind.build(3, 0.05);
            assert_eq!(o.state_len(), 3);
            assert!((o.learning_rate() - 0.05).abs() < 1e-9);
            o.set_learning_rate(0.01);
            assert!((o.learning_rate() - 0.01).abs() < 1e-9);
            let mut p = [1.0f32; 3];
            o.step_begin();
            o.update(0, &mut p, &[1.0; 3]);
            assert!(p.iter().all(|x| *x < 1.0));
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_slice_panics() {
        let mut opt = Sgd::new(2, 0.1);
        let mut p = [0.0f32; 3];
        opt.step_begin();
        opt.update(0, &mut p, &[1.0; 3]);
    }
}

//! Property tests over the multi-embedding interaction model itself:
//! algebraic identities that must hold for every shape, seed and ω.

use mei::core::serialize::{model_from_bytes, model_to_bytes};
use mei::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_omega(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, n * n * n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq. 8 is linear in ω: S_{ω₁+ω₂} = S_{ω₁} + S_{ω₂} for shared
    /// embeddings.
    #[test]
    fn score_is_linear_in_omega(
        seed in 0u64..500,
        w1 in arb_omega(2),
        w2 in arb_omega(2),
    ) {
        let cfg = ModelConfig { num_entities: 6, num_relations: 3, n: 2, dim: 5 };
        let mut rng = StdRng::seed_from_u64(seed);
        let base = MultiEmbedModel::with_fixed_weights(
            cfg, WeightVector::new(2, w1.clone()), &mut rng);
        let mut m1 = base.clone();
        m1.raw_omega_mut().dense_mut().copy_from_slice(&w1);
        m1.refresh_omega();
        let mut m2 = base.clone();
        m2.raw_omega_mut().dense_mut().copy_from_slice(&w2);
        m2.refresh_omega();
        let sum: Vec<f32> = w1.iter().zip(&w2).map(|(a, b)| a + b).collect();
        let mut ms = base.clone();
        ms.raw_omega_mut().dense_mut().copy_from_slice(&sum);
        ms.refresh_omega();
        for (h, t, r) in [(0u32, 1, 0u32), (3, 5, 2), (4, 4, 1)] {
            let triple = Triple::new(h, t, r);
            let lhs = ms.score_triple(triple);
            let rhs = m1.score_triple(triple) + m2.score_triple(triple);
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + rhs.abs()),
                "{lhs} vs {rhs}");
        }
    }

    /// The factorized candidate-scoring contexts reproduce pointwise
    /// scores for arbitrary ω (including dense random ones, not just the
    /// sparse presets) — the eval fast path is exact, not approximate.
    #[test]
    fn contexts_reproduce_scores_for_random_omega(
        seed in 0u64..500,
        omega in arb_omega(2),
    ) {
        let cfg = ModelConfig { num_entities: 8, num_relations: 2, n: 2, dim: 4 };
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MultiEmbedModel::with_fixed_weights(
            cfg, WeightVector::new(2, omega), &mut rng);
        let mut tails = vec![0.0f32; 8];
        model.score_all_tails(EntityId(3), RelationId(1), &mut tails);
        let mut heads = vec![0.0f32; 8];
        model.score_all_heads(EntityId(2), RelationId(0), &mut heads);
        for e in 0..8u32 {
            let pt = model.score_triple(Triple::new(3, e, 1));
            prop_assert!((tails[e as usize] - pt).abs() < 1e-4);
            let ph = model.score_triple(Triple::new(e, 2, 0));
            prop_assert!((heads[e as usize] - ph).abs() < 1e-4);
        }
    }

    /// Serialization round-trips bit-exactly for arbitrary shapes,
    /// including the non-cubic CP grid.
    #[test]
    fn serialization_round_trips_arbitrary_shapes(
        seed in 0u64..1000,
        ne in 1usize..12,
        nr in 1usize..5,
        dim in 1usize..9,
        preset_idx in 0usize..14,
    ) {
        let preset = WeightPreset::all()[preset_idx % WeightPreset::all().len()];
        let (n, omega) = preset.effective_interaction();
        let cfg = ModelConfig { num_entities: ne, num_relations: nr, n, dim };
        let mut rng = StdRng::seed_from_u64(seed);
        let model = MultiEmbedModel::with_fixed_weights(cfg, omega, &mut rng);
        let restored = model_from_bytes(model_to_bytes(&model)).unwrap();
        prop_assert_eq!(model.entities.as_slice(), restored.entities.as_slice());
        prop_assert_eq!(model.relations.as_slice(), restored.relations.as_slice());
        prop_assert_eq!(model.omega().dense(), restored.omega().dense());
        let t = Triple::new(0, (ne - 1) as u32, (nr - 1) as u32);
        prop_assert_eq!(model.score_triple(t), restored.score_triple(t));
    }

    /// Scaling every relation embedding by c scales every score by c for
    /// any single-relation-component model (multilinearity in r).
    #[test]
    fn score_is_linear_in_relation_embedding(
        seed in 0u64..500,
        c in -3.0f32..3.0,
    ) {
        let cfg = ModelConfig { num_entities: 5, num_relations: 2, n: 2, dim: 4 };
        let mut rng = StdRng::seed_from_u64(seed);
        let base = MultiEmbedModel::with_fixed_weights(
            cfg, WeightPreset::ComplEx.weight_vector(), &mut rng);
        let mut scaled = base.clone();
        for item in 0..2 {
            for comp in 0..2 {
                for v in scaled.relations.vec_mut(item, comp) {
                    *v *= c;
                }
            }
        }
        for (h, t, r) in [(0u32, 1, 0u32), (2, 4, 1)] {
            let triple = Triple::new(h, t, r);
            let lhs = scaled.score_triple(triple);
            let rhs = c * base.score_triple(triple);
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + rhs.abs()));
        }
    }
}

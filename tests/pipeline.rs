//! Full-pipeline integration tests: data generation → TSV round trip →
//! augmentation → training → persistence → prediction, exercised the way a
//! downstream user would.

use mei::core::serialize::{load_model, save_model};
use mei::eval::ranking::{evaluate_filtered, top_k_tails};
use mei::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn save_load_train_predict_round_trip() {
    // 1. Generate and persist a benchmark as TSV.
    let ds = SynthWnConfig::at_scale(SynthWnScale::Tiny, 77).generate();
    let dir = std::env::temp_dir().join(format!("mei_pipeline_{}", std::process::id()));
    mei::kg::io::save_benchmark_dir(&ds, &dir, mei::kg::io::ColumnOrder::HeadRelTail).unwrap();

    // 2. Reload it: same shape, same structure.
    let reloaded =
        mei::kg::io::load_benchmark_dir(&dir, mei::kg::io::ColumnOrder::HeadRelTail).unwrap();
    assert_eq!(reloaded.stats(), ds.stats());

    // 3. Train a model on the reloaded data.
    let filter = reloaded.filter_store();
    let mut rng = StdRng::seed_from_u64(1);
    let mut model = MultiEmbedModel::from_preset(
        WeightPreset::ComplEx,
        reloaded.num_entities(),
        reloaded.num_relations(),
        16,
        &mut rng,
    );
    let cfg = TrainConfig {
        max_epochs: 60,
        batch_size: 512,
        learning_rate: 1e-2,
        eval_every: 30,
        patience: 60,
        ..TrainConfig::default()
    };
    Trainer::new(cfg).train(&mut model, &reloaded, &filter);

    // 4. Persist the trained model and reload it.
    let model_path = dir.join("model.bin");
    save_model(&model, &model_path).unwrap();
    let restored = load_model(&model_path).unwrap();

    // 5. The restored model ranks identically.
    let a = evaluate_filtered(&model, &reloaded.test, &filter, &EvalConfig::default());
    let b = evaluate_filtered(&restored, &reloaded.test, &filter, &EvalConfig::default());
    assert_eq!(a.mrr, b.mrr);
    assert_eq!(a.hits, b.hits);

    // 6. Top-k prediction works on the restored model.
    let q = reloaded.test[0];
    let preds = top_k_tails(&restored, q.head, q.relation, 5, &reloaded.train_store());
    assert_eq!(preds.len(), 5);
    assert!(preds.windows(2).all(|w| w[0].1 >= w[1].1), "predictions must be sorted");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn augmentation_pipeline_is_consistent() {
    let ds = SynthWnConfig::at_scale(SynthWnScale::Tiny, 99).generate();
    let aug = AugmentedDataset::from_dataset(&ds);
    // Augmented train contains every original triple and its inverse.
    let aug_store = aug.dataset.train_store();
    for t in &ds.train {
        assert!(aug_store.contains(t));
        let inv = Triple {
            head: t.tail,
            tail: t.head,
            relation: aug.inverse_relation(t.relation),
        };
        assert!(aug_store.contains(&inv));
    }
    // Valid/test untouched.
    assert_eq!(aug.dataset.valid, ds.valid);
    assert_eq!(aug.dataset.test, ds.test);
    aug.dataset.validate().unwrap();
}

#[test]
fn training_on_recsys_beats_chance_for_likes() {
    let kg = RecsysConfig {
        num_users: 60,
        num_items: 80,
        num_categories: 6,
        likes_per_user: 12,
        reviews_per_user: 4,
        co_purchase_pairs: 100,
        seed: 4,
        ..RecsysConfig::default()
    }
    .generate();
    let ds = &kg.dataset;
    let filter = ds.filter_store();
    let mut rng = StdRng::seed_from_u64(2);
    let mut model = MultiEmbedModel::from_preset(
        WeightPreset::ComplEx,
        ds.num_entities(),
        ds.num_relations(),
        16,
        &mut rng,
    );
    let cfg = TrainConfig {
        max_epochs: 120,
        batch_size: 512,
        learning_rate: 1e-2,
        eval_every: 40,
        patience: 120,
        ..TrainConfig::default()
    };
    Trainer::new(cfg).train(&mut model, ds, &filter);
    let like = mei::datagen::recsys::relations::LIKE;
    let like_tests: Vec<Triple> =
        ds.test.iter().copied().filter(|t| t.relation.0 == like).collect();
    assert!(!like_tests.is_empty());
    let res = evaluate_filtered(&model, &like_tests, &filter, &EvalConfig::default());
    // Chance-level Hit@10 with ~146 entities is ≈ 10/146 ≈ 0.07 per side.
    let h10 = res.hits_at(10).unwrap();
    assert!(h10 > 0.2, "recommendation Hit@10 should beat chance: {h10:.3}");
}

#[test]
fn learned_omega_stays_near_uniform_under_softmax() {
    // Table 3's core finding in miniature: the learned ω cannot break the
    // symmetry and remains nearly uniform under softmax restriction.
    let ds = SynthWnConfig::at_scale(SynthWnScale::Tiny, 55).generate();
    let filter = ds.filter_store();
    let mut rng = StdRng::seed_from_u64(4);
    let cfg_model = ModelConfig {
        num_entities: ds.num_entities(),
        num_relations: ds.num_relations(),
        n: 2,
        dim: 16,
    };
    let mut model =
        MultiEmbedModel::with_learned_weights(cfg_model, WeightRestriction::Softmax, 0.05, &mut rng);
    let cfg = TrainConfig {
        max_epochs: 80,
        batch_size: 512,
        learning_rate: 1e-2,
        eval_every: 40,
        patience: 80,
        ..TrainConfig::default()
    };
    Trainer::new(cfg).train(&mut model, &ds, &filter);
    let omega = model.omega().dense();
    let max = omega.iter().cloned().fold(f32::MIN, f32::max);
    let min = omega.iter().cloned().fold(f32::MAX, f32::min);
    // Perfectly uniform would be 0.125 everywhere; we accept a loose band —
    // the paper reports "almost uniform" learned weights.
    assert!(
        max < 0.40 && min > 0.01,
        "softmax-learned ω should stay near-uniform, got [{min:.3}, {max:.3}]"
    );
}

#[test]
fn malformed_inputs_surface_errors_not_panics() {
    // Bad TSV: wrong arity.
    let dir = std::env::temp_dir().join(format!("mei_badtsv_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("train.txt"), "a\tb\n").unwrap();
    std::fs::write(dir.join("valid.txt"), "").unwrap();
    std::fs::write(dir.join("test.txt"), "").unwrap();
    let err = mei::kg::io::load_benchmark_dir(&dir, mei::kg::io::ColumnOrder::HeadRelTail)
        .unwrap_err();
    assert!(err.to_string().contains("expected 3 fields"));

    // Bad model file.
    let model_path = dir.join("bogus.bin");
    std::fs::write(&model_path, b"garbage").unwrap();
    assert!(mei::core::serialize::load_model(&model_path).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

//! End-to-end behavioural tests: train real models on small structured
//! graphs and assert the *learnability separations* the paper's analysis
//! predicts (§2.2.3, §6.1).
//!
//! These are the integration-level counterparts of Table 2: cheap enough
//! for CI, strong enough to catch a broken trainer, sampler, evaluator or
//! weight preset.

use mei::eval::ranking::evaluate_filtered;
use mei::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An antisymmetric "points_to" cycle plus its inverse relation —
/// miniature WN18 structure.
fn inverse_pair_dataset(n: u32) -> Dataset {
    let entities = Dictionary::from_names((0..n).map(|i| format!("e{i}")));
    let relations = Dictionary::from_names(["next", "prev"]);
    let mut train = Vec::new();
    let mut test = Vec::new();
    let mut valid = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        // Keep every "prev" edge in train; hold out some "next" edges whose
        // inverse is therefore still visible — the WN18 leakage pattern.
        train.push(Triple::new(j, i, 1));
        match i % 10 {
            7 => test.push(Triple::new(i, j, 0)),
            3 => valid.push(Triple::new(i, j, 0)),
            _ => train.push(Triple::new(i, j, 0)),
        }
    }
    Dataset { entities, relations, train, valid, test }
}

fn train_preset(
    preset: WeightPreset,
    ds: &Dataset,
    dim: usize,
    epochs: usize,
) -> (MultiEmbedModel, TripleStore) {
    let mut rng = StdRng::seed_from_u64(42);
    let (train_ds, filter);
    if preset == WeightPreset::Cph {
        let aug = AugmentedDataset::from_dataset(ds);
        filter = aug.dataset.filter_store();
        train_ds = aug.dataset;
    } else {
        filter = ds.filter_store();
        train_ds = ds.clone();
    }
    let mut model = MultiEmbedModel::from_preset(
        if preset == WeightPreset::Cph { WeightPreset::Cp } else { preset },
        train_ds.num_entities(),
        train_ds.num_relations(),
        dim,
        &mut rng,
    );
    let cfg = TrainConfig {
        max_epochs: epochs,
        batch_size: 256,
        learning_rate: 1e-2,
        eval_every: epochs / 4,
        patience: epochs,
        ..TrainConfig::default()
    };
    Trainer::new(cfg).train(&mut model, &train_ds, &filter);
    (model, filter)
}

#[test]
fn complex_exploits_inverse_structure_distmult_saturates() {
    let ds = inverse_pair_dataset(60);
    let eval_cfg = EvalConfig::default();

    let (cx, f_cx) = train_preset(WeightPreset::ComplEx, &ds, 16, 400);
    let cx_res = evaluate_filtered(&cx, &ds.test, &f_cx, &eval_cfg);

    let (dm, f_dm) = train_preset(WeightPreset::DistMult, &ds, 32, 400);
    let dm_res = evaluate_filtered(&dm, &ds.test, &f_dm, &eval_cfg);

    assert!(
        cx_res.mrr > dm_res.mrr + 0.1,
        "ComplEx ({:.3}) should clearly beat DistMult ({:.3}) on inverse-structured data",
        cx_res.mrr,
        dm_res.mrr
    );
    assert!(cx_res.mrr > 0.5, "ComplEx should solve the cycle: {:.3}", cx_res.mrr);
}

#[test]
fn cph_augmentation_rescues_cp() {
    let ds = inverse_pair_dataset(60);
    let eval_cfg = EvalConfig::default();

    let (cp, f_cp) = train_preset(WeightPreset::Cp, &ds, 16, 400);
    let cp_res = evaluate_filtered(&cp, &ds.test, &f_cp, &eval_cfg);

    let (cph, f_cph) = train_preset(WeightPreset::Cph, &ds, 16, 400);
    let cph_res = evaluate_filtered(&cph, &ds.test, &f_cph, &eval_cfg);

    assert!(
        cph_res.mrr > cp_res.mrr + 0.15,
        "CPh ({:.3}) should dominate CP ({:.3}) — the Table 2 gap",
        cph_res.mrr,
        cp_res.mrr
    );
}

#[test]
fn cp_fits_train_but_not_test() {
    // §6.1.1's diagnosis: CP's problem is generalization, not capacity.
    let ds = inverse_pair_dataset(60);
    let eval_cfg = EvalConfig::default();
    let (cp, filter) = train_preset(WeightPreset::Cp, &ds, 16, 400);
    let train_res = evaluate_filtered(&cp, &ds.train, &filter, &eval_cfg);
    let test_res = evaluate_filtered(&cp, &ds.test, &filter, &eval_cfg);
    assert!(
        train_res.mrr > 0.6,
        "CP must be able to FIT the training data (capacity): {:.3}",
        train_res.mrr
    );
    assert!(
        train_res.mrr > test_res.mrr + 0.3,
        "CP must show a large train-test gap (overfitting): train {:.3} vs test {:.3}",
        train_res.mrr,
        test_res.mrr
    );
}

#[test]
fn quaternion_model_learns_the_structure() {
    let ds = inverse_pair_dataset(60);
    let eval_cfg = EvalConfig::default();
    let (q, filter) = train_preset(WeightPreset::Quaternion, &ds, 8, 400);
    let res = evaluate_filtered(&q, &ds.test, &filter, &eval_cfg);
    assert!(res.mrr > 0.5, "quaternion model should solve the cycle: {:.3}", res.mrr);
}

#[test]
fn no_model_beats_chance_on_structureless_data() {
    // Null benchmark: random triples ⇒ nothing transfers from train to
    // test. Anything above loose chance bounds indicates harness leakage.
    let ds = mei::datagen::random::random_graph(150, 3, 1500, 0.1, 0.1, 9);
    let eval_cfg = EvalConfig::default();
    let (m, filter) = train_preset(WeightPreset::ComplEx, &ds, 16, 100);
    let res = evaluate_filtered(&m, &ds.test, &filter, &eval_cfg);
    // Chance-level MRR for 150 candidates is ≈ (1/150)·H₁₅₀ ≈ 0.04.
    assert!(
        res.mrr < 0.15,
        "suspiciously high MRR {:.3} on random data — evaluation leakage?",
        res.mrr
    );
}

#[test]
fn symmetric_relation_is_easy_for_all_trilinear_models() {
    // A pure similarity graph: pairs (2i, 2i+1) mutually similar.
    let n = 80u32;
    let entities = Dictionary::from_names((0..n).map(|i| format!("e{i}")));
    let relations = Dictionary::from_names(["similar"]);
    let mut train = Vec::new();
    let mut test = Vec::new();
    for i in (0..n).step_by(2) {
        train.push(Triple::new(i, i + 1, 0));
        if i % 8 == 0 {
            test.push(Triple::new(i + 1, i, 0));
        } else {
            train.push(Triple::new(i + 1, i, 0));
        }
    }
    let valid = vec![train.pop().unwrap()];
    let ds = Dataset { entities, relations, train, valid, test };
    let eval_cfg = EvalConfig::default();

    for preset in [WeightPreset::DistMult, WeightPreset::ComplEx] {
        let (m, filter) = train_preset(preset, &ds, 16, 300);
        let res = evaluate_filtered(&m, &ds.test, &filter, &eval_cfg);
        assert!(
            res.mrr > 0.5,
            "{} should solve symmetric similarity, got {:.3}",
            preset.name(),
            res.mrr
        );
    }
}

#[test]
fn transe_handles_chains_but_not_symmetry() {
    // Chain data: TransE's home turf.
    let chain = inverse_pair_dataset(60);
    let mut rng = StdRng::seed_from_u64(1);
    let mut transe = TransE::new(
        chain.num_entities(),
        chain.num_relations(),
        TransEConfig { dim: 16, epochs: 300, learning_rate: 0.02, ..TransEConfig::default() },
        &mut rng,
    );
    transe.train(&chain);
    let filter = chain.filter_store();
    let res = evaluate_filtered(&transe, &chain.test, &filter, &EvalConfig::default());
    assert!(res.mrr > 0.2, "TransE should do reasonably on cycles: {:.3}", res.mrr);
}

//! Regression tests for the blocked evaluation pipeline: the GEMM-backed
//! `score_block` path must reproduce the per-query path bit-for-bit, and —
//! on exact-arithmetic (grid-quantized) models — the naive `score()` loop
//! too, under every tie policy.

use mei::eval::ranking::{evaluate_with_stats, rank_triple_detailed};
use mei::eval::{BlockQuery, EvalConfig, Side, TiePolicy};
use mei::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Forwards the model's per-query SIMD path but hides `score_block`,
/// so the evaluator falls back to one `score_all_*` call per query.
struct NoBlock<'a>(&'a MultiEmbedModel);

impl TripleScorer for NoBlock<'_> {
    fn num_entities(&self) -> usize {
        self.0.num_entities()
    }
    fn score(&self, h: EntityId, t: EntityId, r: RelationId) -> f32 {
        self.0.score(h, t, r)
    }
    fn score_all_tails(&self, head: EntityId, relation: RelationId, out: &mut [f32]) {
        self.0.score_all_tails(head, relation, out)
    }
    fn score_all_heads(&self, tail: EntityId, relation: RelationId, out: &mut [f32]) {
        self.0.score_all_heads(tail, relation, out)
    }
}

/// Only `score()`: the fully naive per-candidate evaluation path.
struct Naive<'a>(&'a MultiEmbedModel);

impl TripleScorer for Naive<'_> {
    fn num_entities(&self) -> usize {
        self.0.num_entities()
    }
    fn score(&self, h: EntityId, t: EntityId, r: RelationId) -> f32 {
        self.0.score(h, t, r)
    }
}

fn assert_results_bitwise_equal(
    a: &LinkPredictionResults,
    b: &LinkPredictionResults,
    what: &str,
) {
    assert_eq!(a.mrr.to_bits(), b.mrr.to_bits(), "{what}: MRR diverged");
    assert_eq!(a.mr.to_bits(), b.mr.to_bits(), "{what}: MR diverged");
    assert_eq!(a.num_queries, b.num_queries, "{what}: query count diverged");
    assert_eq!(a.mrr_head_side.to_bits(), b.mrr_head_side.to_bits(), "{what}: head MRR diverged");
    assert_eq!(a.mrr_tail_side.to_bits(), b.mrr_tail_side.to_bits(), "{what}: tail MRR diverged");
    assert_eq!(a.hits.len(), b.hits.len());
    for ((ka, va), (kb, vb)) in a.hits.iter().zip(&b.hits) {
        assert_eq!(ka, kb);
        assert_eq!(va.to_bits(), vb.to_bits(), "{what}: Hit@{ka} diverged");
    }
    for (rel, va) in &a.per_relation_mrr {
        let vb = b.per_relation_mrr[rel];
        assert_eq!(va.to_bits(), vb.to_bits(), "{what}: per-relation MRR diverged for {rel:?}");
    }
}

/// The headline acceptance check: on a synthetic WN-style dataset, the
/// blocked pipeline's raw AND filtered metrics — plus every piece of
/// telemetry except wall time — are bitwise identical to the per-query
/// fallback, under every tie policy.
#[test]
fn blocked_metrics_are_bitwise_identical_to_per_query_path() {
    let ds = SynthWnConfig::at_scale(SynthWnScale::Tiny, 9).generate();
    let filter = ds.filter_store();
    let mut rng = StdRng::seed_from_u64(42);
    let model = MultiEmbedModel::from_preset(
        WeightPreset::ComplEx,
        ds.num_entities(),
        ds.num_relations(),
        24,
        &mut rng,
    );
    for policy in [TiePolicy::Optimistic, TiePolicy::Average, TiePolicy::Pessimistic] {
        let config = EvalConfig { hits_at: vec![1, 3, 10], tie_policy: policy };
        let (raw_b, filt_b, stats_b) = evaluate_with_stats(&model, &ds.test, &filter, &config);
        let (raw_q, filt_q, stats_q) =
            evaluate_with_stats(&NoBlock(&model), &ds.test, &filter, &config);
        let label = format!("policy {}", policy.name());
        assert_results_bitwise_equal(&raw_b, &raw_q, &format!("{label} raw"));
        assert_results_bitwise_equal(&filt_b, &filt_q, &format!("{label} filtered"));
        assert_eq!(stats_b.queries, stats_q.queries);
        assert_eq!(stats_b.tied_queries, stats_q.tied_queries);
        assert_eq!(stats_b.head_ranks, stats_q.head_ranks);
        assert_eq!(stats_b.tail_ranks, stats_q.tail_ranks);
    }
}

/// Snaps every embedding parameter to the k/16 grid. With small dims all
/// products and sums stay within f32's 24-bit significand, so every
/// scoring path computes the *exact* real number — making rank and tie
/// comparisons against the naive `score()` loop meaningful bit-for-bit
/// (random f32 models could legitimately flip ranks between summation
/// orders on last-bit score differences).
fn quantize(model: &mut MultiEmbedModel) {
    let ne = model.num_entities();
    for e in 0..ne {
        for v in model.entities.row_mut(e) {
            *v = (*v * 16.0).round() / 16.0;
        }
    }
    let nr = model.relations.num_items();
    for r in 0..nr {
        for v in model.relations.row_mut(r) {
            *v = (*v * 16.0).round() / 16.0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On quantized models the blocked kernel, the per-query kernel, and
    /// the naive score() loop produce identical score vectors, identical
    /// raw/filtered ranks, and identical tie counts under every policy.
    #[test]
    fn blocked_ranks_match_naive_scoring_on_quantized_models(
        seed in 0u64..10_000,
        preset_idx in 0usize..3,
    ) {
        let preset =
            [WeightPreset::DistMult, WeightPreset::ComplEx, WeightPreset::Cp][preset_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let ne = 30usize;
        let mut model = MultiEmbedModel::from_preset(preset, ne, 4, 4, &mut rng);
        quantize(&mut model);

        let triples: Vec<Triple> = (0..12u32)
            .map(|i| Triple::new(i % ne as u32, (i * 7 + seed as u32) % ne as u32, i % 4))
            .collect();
        let filter: TripleStore = triples.iter().copied().collect();
        let naive = Naive(&model);

        // Score vectors agree bitwise between blocked rows and the naive
        // loop (exact arithmetic ⇒ summation order cannot matter).
        let queries: Vec<BlockQuery> = triples
            .iter()
            .flat_map(|t| {
                [BlockQuery::tails(t.head, t.relation), BlockQuery::heads(t.tail, t.relation)]
            })
            .collect();
        let mut blocked = vec![0.0f32; queries.len() * ne];
        model.score_block(&queries, &mut blocked);
        let mut naive_row = vec![0.0f32; ne];
        for (q, brow) in queries.iter().zip(blocked.chunks(ne)) {
            match q.side {
                Side::Tail => naive.score_all_tails(q.anchor, q.relation, &mut naive_row),
                Side::Head => naive.score_all_heads(q.anchor, q.relation, &mut naive_row),
            }
            for (a, b) in brow.iter().zip(&naive_row) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            // Identical raw/filtered ranks and tie counts for every policy.
            let known = match q.side {
                Side::Tail => filter.tails_of(q.anchor, q.relation),
                Side::Head => filter.heads_of(q.anchor, q.relation),
            };
            // Every true entity of the group, not just one, must rank
            // identically.
            for &truth in known {
                for policy in
                    [TiePolicy::Optimistic, TiePolicy::Average, TiePolicy::Pessimistic]
                {
                    let ob = rank_triple_detailed(brow, truth, known, policy);
                    let on = rank_triple_detailed(&naive_row, truth, known, policy);
                    prop_assert_eq!(ob, on);
                }
            }
        }

        // And the full pipeline agrees end to end.
        for policy in [TiePolicy::Optimistic, TiePolicy::Average, TiePolicy::Pessimistic] {
            let config = EvalConfig { hits_at: vec![1, 3, 10], tie_policy: policy };
            let (raw_b, filt_b, stats_b) =
                evaluate_with_stats(&model, &triples, &filter, &config);
            let (raw_n, filt_n, stats_n) =
                evaluate_with_stats(&naive, &triples, &filter, &config);
            prop_assert_eq!(raw_b.mrr.to_bits(), raw_n.mrr.to_bits());
            prop_assert_eq!(filt_b.mrr.to_bits(), filt_n.mrr.to_bits());
            prop_assert_eq!(filt_b.hits, filt_n.hits);
            prop_assert_eq!(stats_b.tied_queries, stats_n.tied_queries);
        }
    }
}

//! Cross-crate integration tests for the paper's central claim: the
//! multi-embedding interaction mechanism *unifies* DistMult, ComplEx, CP,
//! CPh and the quaternion model (§3.2, Table 1, Eqs. 9–11 and 14).

use mei::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model_with(preset: WeightPreset, seed: u64, ne: usize, nr: usize, dim: usize) -> MultiEmbedModel {
    let mut rng = StdRng::seed_from_u64(seed);
    MultiEmbedModel::from_preset(preset, ne, nr, dim, &mut rng)
}

#[test]
fn complex_preset_is_the_symbolic_expansion() {
    assert_eq!(WeightPreset::ComplEx.omega(), mei::algebra::complex_omega());
    assert_eq!(WeightPreset::Quaternion.omega(), mei::algebra::quaternion_omega());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For arbitrary embeddings, the ComplEx ω-preset score equals
    /// Re⟨h, t̄, r⟩ computed natively in complex algebra (Eq. 10).
    #[test]
    fn complex_unification_holds_on_random_embeddings(seed in 0u64..1000) {
        let m = model_with(WeightPreset::ComplEx, seed, 8, 4, 6);
        for (h, t, r) in [(0u32, 1, 0u32), (2, 7, 1), (5, 5, 3), (6, 0, 2)] {
            let unified = m.score_triple(Triple::new(h, t, r));
            let native = mei::algebra::embedding::complex_score(
                [m.entities.vec(h as usize, 0), m.entities.vec(h as usize, 1)],
                [m.entities.vec(t as usize, 0), m.entities.vec(t as usize, 1)],
                [m.relations.vec(r as usize, 0), m.relations.vec(r as usize, 1)],
            );
            prop_assert!((unified - native).abs() < 1e-4);
        }
    }

    /// Same for the quaternion four-embedding model (Eq. 14).
    #[test]
    fn quaternion_unification_holds_on_random_embeddings(seed in 0u64..1000) {
        let m = model_with(WeightPreset::Quaternion, seed, 8, 4, 5);
        for (h, t, r) in [(0u32, 1, 0u32), (3, 6, 2), (7, 7, 1)] {
            let unified = m.score_triple(Triple::new(h, t, r));
            let e = |i: u32, c: usize| m.entities.vec(i as usize, c);
            let rl = |i: u32, c: usize| m.relations.vec(i as usize, c);
            let native = mei::algebra::embedding::quaternion_score(
                [e(h, 0), e(h, 1), e(h, 2), e(h, 3)],
                [e(t, 0), e(t, 1), e(t, 2), e(t, 3)],
                [rl(r, 0), rl(r, 1), rl(r, 2), rl(r, 3)],
            );
            prop_assert!((unified - native).abs() < 1e-3);
        }
    }

    /// DistMult's ω makes the score symmetric in h and t for *every*
    /// embedding assignment; ComplEx/CP/CPh's do not (they are capable of
    /// asymmetry — §2.2.3's modeling-capacity distinction).
    #[test]
    fn symmetry_is_a_property_of_omega(seed in 0u64..200) {
        let sym = model_with(WeightPreset::DistMult, seed, 6, 2, 5);
        for (h, t, r) in [(0u32, 1, 0u32), (2, 3, 1), (4, 5, 0)] {
            let fwd = sym.score_triple(Triple::new(h, t, r));
            let bwd = sym.score_triple(Triple::new(t, h, r));
            prop_assert!((fwd - bwd).abs() < 1e-5);
        }
        let asym = model_with(WeightPreset::ComplEx, seed, 6, 2, 5);
        let mut any_diff = false;
        for (h, t, r) in [(0u32, 1, 0u32), (2, 3, 1), (4, 5, 0)] {
            let fwd = asym.score_triple(Triple::new(h, t, r));
            let bwd = asym.score_triple(Triple::new(t, h, r));
            any_diff |= (fwd - bwd).abs() > 1e-6;
        }
        prop_assert!(any_diff);
    }

    /// The "CPh equiv." column of Table 1 scores identically to CPh once
    /// head/tail roles and relation components are swapped consistently —
    /// by the h↔t symmetry argument of §3.2.
    #[test]
    fn cph_equiv_is_a_relabeling_of_cph(seed in 0u64..200) {
        let cph = model_with(WeightPreset::Cph, seed, 6, 2, 5);
        // Build the equiv model sharing the same embeddings.
        let mut equiv = cph.clone();
        equiv
            .raw_omega_mut()
            .dense_mut()
            .copy_from_slice(&WeightPreset::CphEquiv.omega());
        equiv.refresh_omega();
        // ω_cph (0,0,1,0,0,1,0,0): S = ⟨h1,t2,r1⟩ + ⟨h2,t1,r2⟩.
        // ω_equiv (0,0,0,1,1,0,0,0): S = ⟨h1,t2,r2⟩ + ⟨h2,t1,r1⟩.
        // Swapping the two relation components maps one onto the other.
        for rel in 0..2usize {
            let c0 = equiv.relations.vec(rel, 0).to_vec();
            let c1 = equiv.relations.vec(rel, 1).to_vec();
            equiv.relations.vec_mut(rel, 0).copy_from_slice(&c1);
            equiv.relations.vec_mut(rel, 1).copy_from_slice(&c0);
        }
        for (h, t, r) in [(0u32, 1, 0u32), (3, 2, 1), (5, 4, 0)] {
            let a = cph.score_triple(Triple::new(h, t, r));
            let b = equiv.score_triple(Triple::new(h, t, r));
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }
}

/// Eq. 11: training CP on the inverse-augmented dataset optimizes the same
/// objective as the CPh weight vector with r⁽²⁾ := r⁽ᵃ⁾. Verify at the
/// score level: S_cph(h,t,r) = S_cp(h,t,r) + S_cp(t,h,r_aug) when the CPh
/// model's r⁽²⁾ equals the augmented model's r⁽ᵃ⁾ first component.
#[test]
fn cph_weight_vector_equals_cp_plus_inverse_triple() {
    let mut rng = StdRng::seed_from_u64(5);
    let ne = 6;
    let nr = 2;
    let dim = 4;
    // One model with CPh ω.
    let cph = MultiEmbedModel::from_preset(WeightPreset::Cph, ne, nr, dim, &mut rng);
    // A CP model over the doubled relation vocabulary sharing embeddings:
    // entity tables equal; relation r's first component = cph r(1),
    // augmented relation r+nr's first component = cph r(2).
    let mut cp = MultiEmbedModel::from_preset(WeightPreset::Cp, ne, 2 * nr, dim, &mut rng);
    cp.entities = cph.entities.clone();
    for r in 0..nr {
        let r1 = cph.relations.vec(r, 0).to_vec();
        let r2 = cph.relations.vec(r, 1).to_vec();
        cp.relations.vec_mut(r, 0).copy_from_slice(&r1);
        cp.relations.vec_mut(r + nr, 0).copy_from_slice(&r2);
    }
    for (h, t, r) in [(0u32, 1u32, 0u32), (2, 3, 1), (4, 5, 0)] {
        let s_cph = cph.score_triple(Triple::new(h, t, r));
        let s_cp_fwd = cp.score_triple(Triple::new(h, t, r));
        let s_cp_inv = cp.score_triple(Triple::new(t, h, r + nr as u32));
        assert!(
            (s_cph - (s_cp_fwd + s_cp_inv)).abs() < 1e-5,
            "Eq. 11 violated: {s_cph} vs {} + {}",
            s_cp_fwd,
            s_cp_inv
        );
    }
}

/// The four ComplEx-equivalent weight vectors of Table 1 all have the same
/// three §6.1.2 properties: complete, stable, distinguishable (asymmetric).
#[test]
fn complex_equivalents_share_good_properties() {
    for preset in [
        WeightPreset::ComplEx,
        WeightPreset::ComplExEquiv1,
        WeightPreset::ComplExEquiv2,
        WeightPreset::ComplExEquiv3,
    ] {
        let wv = preset.weight_vector();
        assert!(!wv.is_symmetric(), "{} must be distinguishable", preset.name());
        assert_eq!(wv.terms().len(), 4, "{}", preset.name());
        // Completeness: every component of h, t, r appears.
        for role in 0..3 {
            for comp in 0..2 {
                let used = wv.terms().iter().any(|(i, j, k, _)| match role {
                    0 => *i == comp,
                    1 => *j == comp,
                    _ => *k == comp,
                });
                assert!(used, "{}: role {role} component {comp} unused", preset.name());
            }
        }
    }
}

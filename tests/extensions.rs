//! Integration tests for the extension surface: leakage removal, dataset
//! surgery, grid search, margin loss, Bernoulli sampling and the octonion
//! model — exercised together through the public facade, the way a
//! downstream experiment would compose them.

use mei::core::tuning::{grid_search, Grid};
use mei::eval::ranking::evaluate_filtered;
use mei::kg::dedup::{remove_leaky_relations, DedupConfig};
use mei::kg::subgraph::{k_core, subsample_train};
use mei::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dedup_removes_synthwn_hierarchy_pairs_and_lowers_leakage() {
    let ds = SynthWnConfig::at_scale(SynthWnScale::Tiny, 3).generate();
    let before = ds.test_inverse_leakage();
    let (hard, report) = remove_leaky_relations(&ds, DedupConfig::default());
    // The tiny preset has 2 hierarchy pairs → 2 removals.
    assert_eq!(report.removed_inverse.len(), 2, "{:?}", report.removed_inverse);
    assert!(report.triples_removed > 100);
    hard.validate().unwrap();
    let after = hard.test_inverse_leakage();
    assert!(
        after < before - 0.1,
        "leakage should drop materially: {before:.3} → {after:.3}"
    );
    // Symmetric relations survive (WN18RR kept _similar_to).
    assert!(hard.relations.get("_similar_to_0").is_some());
    assert!(hard.relations.get("_hypernym_0").is_none() || hard.relations.get("_hyponym_0").is_none());
}

#[test]
fn training_on_hard_variant_caps_complex_at_the_new_ceiling() {
    let ds = SynthWnConfig::at_scale(SynthWnScale::Tiny, 3).generate();
    let (hard, _) = remove_leaky_relations(&ds, DedupConfig::default());
    let filter = hard.filter_store();
    let mut rng = StdRng::seed_from_u64(1);
    let mut model = MultiEmbedModel::from_preset(
        WeightPreset::ComplEx,
        hard.num_entities(),
        hard.num_relations(),
        16,
        &mut rng,
    );
    let cfg = TrainConfig {
        max_epochs: 150,
        batch_size: 512,
        learning_rate: 1e-2,
        eval_every: 50,
        patience: 100,
        ..TrainConfig::default()
    };
    Trainer::new(cfg).train(&mut model, &hard, &filter);
    let res = evaluate_filtered(&model, &hard.test, &filter, &EvalConfig::default());
    // The remaining predictable structure is symmetric self-leakage; the
    // model should sit near that ceiling, far below the full-SynthWN MRR.
    let ceiling = hard.test_inverse_leakage();
    assert!(
        res.mrr < ceiling + 0.25,
        "MRR {:.3} suspiciously above the leakage ceiling {:.3}",
        res.mrr,
        ceiling
    );
}

#[test]
fn subgraph_surgery_composes_with_training() {
    let ds = SynthWnConfig::at_scale(SynthWnScale::Tiny, 9).generate();
    // Densify to the 4-core (the 3-core of this seed's graph keeps every
    // entity, so 4 is the smallest k that strictly prunes), then
    // subsample train to 80%.
    let core = k_core(&ds, 4);
    assert!(core.num_entities() > 0 && core.num_entities() < ds.num_entities());
    core.validate().unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let smaller = subsample_train(&core, 0.8, &mut rng);
    assert!(smaller.train.len() < core.train.len());
    // The surgered dataset still trains without issue.
    let filter = smaller.filter_store();
    let mut rng = StdRng::seed_from_u64(3);
    let mut model = MultiEmbedModel::from_preset(
        WeightPreset::Cph,
        smaller.num_entities(),
        smaller.num_relations(),
        8,
        &mut rng,
    );
    let cfg = TrainConfig { max_epochs: 20, batch_size: 256, ..TrainConfig::default() };
    let report = Trainer::new(cfg).train(&mut model, &smaller, &filter);
    assert!(report.epochs_run == 20);
}

#[test]
fn grid_search_prefers_sane_hyperparameters_on_synthwn() {
    let ds = SynthWnConfig::at_scale(SynthWnScale::Tiny, 5).generate();
    let filter = ds.filter_store();
    let cfg = ModelConfig {
        num_entities: ds.num_entities(),
        num_relations: ds.num_relations(),
        n: 2,
        dim: 8,
    };
    let base = TrainConfig { max_epochs: 30, eval_every: 15, patience: 30, ..TrainConfig::default() };
    let grid = Grid {
        learning_rates: vec![1e-2, 1e-6], // second is hopeless at 30 epochs
        l2_lambdas: vec![1e-3],
        batch_sizes: vec![512],
    };
    let result = grid_search(cfg, WeightPreset::ComplEx.weight_vector(), &ds, &filter, &base, &grid);
    assert_eq!(result.best.learning_rate, 1e-2);
    assert_eq!(result.sweep.len(), 2);
}

#[test]
fn margin_loss_and_bernoulli_sampling_compose() {
    let ds = SynthWnConfig::at_scale(SynthWnScale::Tiny, 7).generate();
    let filter = ds.filter_store();
    let mut rng = StdRng::seed_from_u64(11);
    let mut model = MultiEmbedModel::from_preset(
        WeightPreset::ComplEx,
        ds.num_entities(),
        ds.num_relations(),
        16,
        &mut rng,
    );
    let cfg = TrainConfig {
        max_epochs: 100,
        batch_size: 512,
        learning_rate: 1e-2,
        eval_every: 50,
        patience: 100,
        loss: LossKind::MarginRanking { margin: 1.0 },
        sampling: SamplingStrategy::Bernoulli,
        ..TrainConfig::default()
    };
    let report = Trainer::new(cfg).train(&mut model, &ds, &filter);
    assert!(
        report.best_valid_mrr > 0.1,
        "margin + bernoulli training should learn something: {:.3}",
        report.best_valid_mrr
    );
}

#[test]
fn octonion_model_trains_and_serializes() {
    let ds = SynthWnConfig::at_scale(SynthWnScale::Tiny, 13).generate();
    let filter = ds.filter_store();
    let mut rng = StdRng::seed_from_u64(17);
    let mut model = MultiEmbedModel::from_preset(
        WeightPreset::Octonion,
        ds.num_entities(),
        ds.num_relations(),
        4, // n = 8 components of 4 dims each
        &mut rng,
    );
    assert_eq!(model.omega().terms().len(), 64);
    let cfg = TrainConfig {
        max_epochs: 40,
        batch_size: 512,
        learning_rate: 1e-2,
        eval_every: 20,
        patience: 40,
        ..TrainConfig::default()
    };
    let report = Trainer::new(cfg).train(&mut model, &ds, &filter);
    assert!(report.best_valid_mrr.is_finite());
    let restored = mei::core::serialize::model_from_bytes(
        mei::core::serialize::model_to_bytes(&model),
    )
    .unwrap();
    let t = Triple::new(0, 1, 0);
    assert_eq!(model.score_triple(t), restored.score_triple(t));
}

//! Offline drop-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the APIs it needs: [`scope`] (scoped task spawning on real OS
//! threads), [`current_num_threads`], and the slice parallel iterators
//! `par_iter` / `par_chunks` with the `map` / `fold` / `reduce` adapter
//! chain.
//!
//! Unlike rayon's work-stealing deques, this implementation splits the
//! input into one contiguous shard per available core, runs each shard's
//! adapter pipeline sequentially on its own `std::thread::scope` thread,
//! and combines shard results in shard order. That makes the reduction
//! tree a *deterministic* function of `current_num_threads()` — a
//! property the trainer's reproducibility guarantees rely on — while
//! still using every core for large inputs. Tiny inputs (fewer items
//! than shards) run inline to avoid spawn overhead.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Scoped spawning.
// ---------------------------------------------------------------------------

/// A scope for spawning borrowing tasks, mirroring `rayon::scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `f` on a new OS thread joined when the scope ends.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let handoff = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handoff));
    }
}

/// Runs `f` with a [`Scope`]; returns after every spawned task finishes.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

// ---------------------------------------------------------------------------
// Parallel iterators (shard model).
// ---------------------------------------------------------------------------

/// A parallel pipeline: splits into `n` contiguous shards, each evaluated
/// sequentially on its own thread.
pub trait ParallelIterator: Sync + Sized {
    /// The element type flowing out of this pipeline stage.
    type Item: Send;

    /// Upper bound on useful shard count (usually the item count).
    fn max_shards(&self) -> usize;

    /// Evaluates shard `i` of `n`, in order.
    fn shard(&self, i: usize, n: usize) -> Vec<Self::Item>;

    /// Applies `f` to every item.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Folds each shard into one accumulator (rayon's `fold` semantics:
    /// the result is a parallel iterator over per-shard accumulators).
    fn fold<A, ID, F>(self, identity: ID, fold: F) -> Fold<Self, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, Self::Item) -> A + Sync,
    {
        Fold { base: self, identity, fold }
    }

    /// Combines all items in shard order, seeding with `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        drive(&self).into_iter().fold(identity(), op)
    }

    /// Collects all items in order.
    fn collect_into_vec(self, out: &mut Vec<Self::Item>) {
        out.clear();
        out.extend(drive(&self));
    }
}

/// Evaluates every shard, on worker threads when the input is large
/// enough, and concatenates the results in shard order.
fn drive<P: ParallelIterator>(p: &P) -> Vec<P::Item> {
    let n = current_num_threads().min(p.max_shards()).max(1);
    if n == 1 {
        return p.shard(0, 1);
    }
    let per_shard: Vec<Vec<P::Item>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n).map(|i| s.spawn(move || p.shard(i, n))).collect();
        handles.into_iter().map(|h| h.join().expect("rayon shard panicked")).collect()
    });
    per_shard.into_iter().flatten().collect()
}

/// Splits `len` items into `n` contiguous ranges; shard `i` gets the
/// `i`-th range (earlier shards one longer when `n ∤ len`).
fn shard_bounds(len: usize, i: usize, n: usize) -> (usize, usize) {
    let base = len / n;
    let extra = len % n;
    let start = i * base + i.min(extra);
    let end = start + base + usize::from(i < extra);
    (start, end)
}

/// `map` adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn max_shards(&self) -> usize {
        self.base.max_shards()
    }

    fn shard(&self, i: usize, n: usize) -> Vec<R> {
        self.base.shard(i, n).into_iter().map(&self.f).collect()
    }
}

/// `fold` adapter: one accumulator per shard.
pub struct Fold<P, ID, F> {
    base: P,
    identity: ID,
    fold: F,
}

impl<P, A, ID, F> ParallelIterator for Fold<P, ID, F>
where
    P: ParallelIterator,
    A: Send,
    ID: Fn() -> A + Sync,
    F: Fn(A, P::Item) -> A + Sync,
{
    type Item = A;

    fn max_shards(&self) -> usize {
        self.base.max_shards()
    }

    fn shard(&self, i: usize, n: usize) -> Vec<A> {
        let acc = self.base.shard(i, n).into_iter().fold((self.identity)(), &self.fold);
        vec![acc]
    }
}

/// Borrowing parallel iterator over a slice (`par_iter`).
pub struct ParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn max_shards(&self) -> usize {
        self.slice.len()
    }

    fn shard(&self, i: usize, n: usize) -> Vec<&'a T> {
        let (start, end) = shard_bounds(self.slice.len(), i, n);
        self.slice[start..end].iter().collect()
    }
}

/// Parallel iterator over fixed-size chunks of a slice (`par_chunks`).
pub struct ParChunks<'a, T: Sync> {
    slice: &'a [T],
    chunk_size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn max_shards(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn shard(&self, i: usize, n: usize) -> Vec<&'a [T]> {
        let num_chunks = self.max_shards();
        let (start, end) = shard_bounds(num_chunks, i, n);
        (start..end)
            .map(|c| {
                let lo = c * self.chunk_size;
                let hi = (lo + self.chunk_size).min(self.slice.len());
                &self.slice[lo..hi]
            })
            .collect()
    }
}

/// `.par_iter()` on slices (and anything derefing to them).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowing parallel iterator type.
    type Iter: ParallelIterator;

    /// Parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// `.par_chunks(n)` on slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-sized pieces of the slice.
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "par_chunks: chunk size must be positive");
        ParChunks { slice: self, chunk_size }
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use crate::{IntoParallelRefIterator, ParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_map_reduce_matches_sequential() {
        let v: Vec<u64> = (0..10_000).collect();
        let par = v.par_iter().map(|&x| x * x).reduce(|| 0, |a, b| a + b);
        let seq: u64 = v.iter().map(|&x| x * x).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn fold_then_map_then_reduce_pipeline() {
        // The exact shape the evaluator uses: fold to per-shard state,
        // map to strip scratch, reduce to merge.
        let v: Vec<u32> = (1..=1000).collect();
        let total = v
            .par_iter()
            .fold(|| (0u64, 0usize), |(sum, cnt), &x| (sum + u64::from(x), cnt + 1))
            .map(|(sum, _cnt)| sum)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn par_chunks_preserves_chunk_boundaries_and_order() {
        let v: Vec<usize> = (0..103).collect();
        let mut out = Vec::new();
        v.par_chunks(10).map(|c| c.to_vec()).collect_into_vec(&mut out);
        assert_eq!(out.len(), 11);
        assert_eq!(out[0], (0..10).collect::<Vec<_>>());
        assert_eq!(out[10], (100..103).collect::<Vec<_>>());
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, v);
    }

    #[test]
    fn reduce_is_deterministic_across_runs() {
        let v: Vec<f64> = (0..5000).map(|i| (i as f64).sin()).collect();
        let run = || v.par_iter().map(|&x| x * 1.000001).reduce(|| 0.0, |a, b| a + b);
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn scope_spawns_really_run_and_join() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..32 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn nested_scope_spawn() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = vec![];
        assert_eq!(empty.par_iter().map(|&x| x).reduce(|| 0, |a, b| a + b), 0);
        let one = [41u8];
        assert_eq!(one.par_iter().map(|&x| x + 1).reduce(|| 0, |a, b| a + b), 42);
    }
}

//! Offline drop-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of APIs it needs: [`rngs::StdRng`] (xoshiro256++
//! seeded through SplitMix64), [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed but
//! are *not* bit-compatible with upstream `rand`; nothing in the
//! workspace depends on upstream's exact streams, only on seeded
//! reproducibility within a build.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform sampling from a range — the receiver of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 53 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + ((self.end - self.start) as f64 * unit_f64(rng)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + ((hi - lo) as f64 * unit_f64(rng)) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface: everything here reproduces from one `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose whole stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Fast, 256-bit state, passes BigCrush — more than
    /// adequate for embedding initialization and negative sampling.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The generator's exact internal state — four xoshiro256++ words.
        ///
        /// Together with [`StdRng::from_state`] this makes the stream
        /// checkpointable: persist the four words mid-stream and a
        /// restored generator continues with bit-identical draws, which
        /// is what crash-safe training resume depends on.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`] words.
        ///
        /// The all-zero state is xoshiro's one degenerate fixed point
        /// (the stream would be constant zero), so it is mapped back to
        /// a seeded state instead of being trusted.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let draws_a: Vec<u32> = (0..16).map(|_| a.gen_range(0u32..1_000_000)).collect();
        let draws_c: Vec<u32> = (0..16).map(|_| c.gen_range(0u32..1_000_000)).collect();
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn state_round_trip_resumes_the_exact_stream() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..37 {
            rng.gen_range(0u64..1_000);
        }
        let saved = rng.state();
        let tail: Vec<u64> = (0..64).map(|_| rng.gen_range(0u64..u64::MAX)).collect();
        let mut restored = StdRng::from_state(saved);
        let resumed: Vec<u64> = (0..64).map(|_| restored.gen_range(0u64..u64::MAX)).collect();
        assert_eq!(tail, resumed);
        // The degenerate all-zero state is rejected, not trusted.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f32..=2.5);
            assert!((-2.5..=2.5).contains(&f));
            let i = rng.gen_range(-8i32..9);
            assert!((-8..9).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely leave identity");
    }

    #[test]
    fn shuffle_works_through_dyn_like_generics() {
        fn go<R: Rng + ?Sized>(rng: &mut R, v: &mut [u8]) {
            v.shuffle(rng);
        }
        let mut rng = StdRng::seed_from_u64(9);
        let mut v = [1u8, 2, 3, 4, 5];
        go(&mut rng, &mut v);
    }
}

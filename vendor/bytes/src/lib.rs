//! Offline drop-in for the subset of `bytes` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors [`Bytes`] / [`BytesMut`] and the [`Buf`] / [`BufMut`] traits
//! with the little-endian accessors the model codec needs. `Bytes` is a
//! cheaply cloneable `Arc<[u8]>` window; consuming reads advance the
//! window instead of copying.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, sliceable immutable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static byte string.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Bytes currently visible through the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-window sharing the same allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: v.into(), start: 0, end }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Consumes `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8: buffer exhausted");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32_le: buffer exhausted");
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64_le: buffer exhausted");
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

/// Growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Write cursor for encoding.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn encode_decode_round_trip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"MAGI");
        w.put_u32_le(7);
        w.put_u8(3);
        w.put_f32_le(1.5);
        let mut r = w.freeze();
        assert_eq!(&r.copy_to_bytes(4)[..], b"MAGI");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..2);
        assert_eq!(&s2[..], &[3]);
        assert_eq!(b.len(), 6, "source unaffected");
    }

    #[test]
    fn from_static_and_eq() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn reading_past_end_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u32_le();
    }
}

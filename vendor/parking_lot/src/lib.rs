//! Offline drop-in for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors `Mutex` and `RwLock` with parking_lot's poison-free API,
//! implemented over `std::sync` primitives. A poisoned std lock (a
//! panicked holder) is simply entered, matching parking_lot semantics.

use std::sync::PoisonError;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

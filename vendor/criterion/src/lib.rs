//! Offline drop-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small wall-clock benchmark harness with criterion's API
//! shape: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `iter` / `iter_batched`, `black_box`, and `BenchmarkId`.
//!
//! Semantics: each benchmark runs a short warm-up, then up to
//! `sample_size` timed samples inside a ~1 s budget, and prints
//! mean/min per-iteration times. Under `cargo test` (which invokes
//! bench binaries with `--test`) every benchmark body runs exactly once
//! so the suite stays fast while still smoke-testing the bench code.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not tuned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many small inputs per setup.
    SmallInput,
    /// One large input per setup.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// A parameterized benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label made from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Label made from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing state handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up, then sample within a wall-clock budget.
        black_box(routine());
        let budget = Duration::from_secs(1);
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > budget {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup()));
        let budget = Duration::from_secs(1);
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if started.elapsed() > budget {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!("{label:<60} mean {mean:>12.3?}  min {min:>12.3?}  ({} samples)", samples.len());
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        if !self.criterion.test_mode {
            report(&format!("{}/{}", self.name, id), &b.samples);
        }
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_id(), f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_id(), |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is immediate here; kept for API
    /// compatibility).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Anything with `--test` (or the
        // explicit CRITERION_TEST_MODE=1) runs every body exactly once.
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_TEST_MODE").is_some_and(|v| v == "1");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Applies CLI configuration (accepted for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, sample_size: 100 }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: "bench".to_owned(),
            criterion: self,
            sample_size: 100,
        };
        group.run(id.into_id(), f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_in_test_mode() -> Criterion {
        Criterion { test_mode: true }
    }

    #[test]
    fn bodies_run_once_in_test_mode() {
        let mut c = run_in_test_mode();
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.sample_size(50);
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn iter_batched_pairs_setup_and_routine() {
        let mut c = run_in_test_mode();
        let mut group = c.benchmark_group("g");
        let mut seen = Vec::new();
        group.bench_function("batched", |b| {
            b.iter_batched(|| 41, |x| seen.push(x + 1), BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(seen, vec![42]);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = run_in_test_mode();
        let mut group = c.benchmark_group("g");
        let mut got = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| got = n)
        });
        group.finish();
        assert_eq!(got, 7);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::from_parameter(25).into_id(), "25");
        assert_eq!(BenchmarkId::new("f", 3).into_id(), "f/3");
    }
}

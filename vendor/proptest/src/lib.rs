//! Offline drop-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the API surface its property tests need: the [`proptest!`]
//! macro, [`Strategy`] implemented for numeric ranges / tuples / simple
//! regex string patterns, [`collection::vec`], [`array::uniform4`] (and
//! 6/8), [`bool::ANY`], `prop_map`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for a hermetic build:
//! - cases are generated from a seed derived from the test name, so
//!   every run of a given binary explores the same deterministic,
//!   reproducible sequence (upstream defaults to fresh entropy + a
//!   failure persistence file);
//! - no shrinking: a failing case panics immediately with the case
//!   index. Reruns fail on the identical case, which is what makes the
//!   missing shrinker tolerable in practice.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic case generation.

    /// Config for one `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Runs `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; that is also affordable here
            // because generation is cheap and there is no shrinking pass.
            Config { cases: 256 }
        }
    }

    /// xoshiro256++ seeded per `(test name, case index)`.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Deterministic generator for case `case` of test `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, 1)`.
        #[inline]
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        #[inline]
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub use test_runner::{Config as ProptestConfig, TestRng};

/// A generator of random values for one test argument.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms produced values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + ((self.end - self.start) as f64 * rng.unit_f64()) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + ((hi - lo) as f64 * rng.unit_f64()) as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ $(,)?))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Minimal regex-shaped string strategy: supports literal characters and
/// `[a-z0-9_]`-style classes, each optionally quantified with `{m}`,
/// `{m,n}`, `?`, `*` or `+` (the latter two capped at 8 repetitions).
/// Panics on anything it does not understand, so an unsupported pattern
/// fails loudly rather than silently generating wrong data.
impl Strategy for str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

mod pattern {
    use super::test_runner::TestRng;

    enum Piece {
        Class(Vec<char>),
        Literal(char),
    }

    pub fn sample(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pat.chars().peekable();
        while let Some(c) = chars.next() {
            let piece = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let c = chars.next().unwrap_or_else(|| unsupported(pat, "unclosed ["));
                        match c {
                            ']' => break,
                            '-' => {
                                let lo = prev.take()
                                    .unwrap_or_else(|| unsupported(pat, "range without start"));
                                let hi = chars.next()
                                    .unwrap_or_else(|| unsupported(pat, "range without end"));
                                set.pop();
                                for ch in lo..=hi {
                                    set.push(ch);
                                }
                            }
                            c => {
                                set.push(c);
                                prev = Some(c);
                            }
                        }
                    }
                    if set.is_empty() {
                        unsupported(pat, "empty character class");
                    }
                    Piece::Class(set)
                }
                '\\' => Piece::Literal(
                    chars.next().unwrap_or_else(|| unsupported(pat, "trailing backslash")),
                ),
                '(' | ')' | '|' | '.' | '^' | '$' => unsupported(pat, "regex feature"),
                c => Piece::Literal(c),
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().unwrap_or_else(|_| unsupported(pat, "bad {m,n}")),
                            n.trim().parse().unwrap_or_else(|_| unsupported(pat, "bad {m,n}")),
                        ),
                        None => {
                            let m: usize =
                                spec.trim().parse().unwrap_or_else(|_| unsupported(pat, "bad {m}"));
                            (m, m)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            let count = lo + if hi > lo { rng.below(hi - lo + 1) } else { 0 };
            for _ in 0..count {
                match &piece {
                    Piece::Class(set) => out.push(set[rng.below(set.len())]),
                    Piece::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }

    fn unsupported(pat: &str, what: &str) -> ! {
        panic!("string strategy {pat:?}: unsupported ({what}) — extend vendor/proptest")
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; N]`.
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }

    macro_rules! uniform {
        ($($name:ident => $n:literal),*) => {$(
            /// Array of independent draws from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )*};
    }

    uniform!(uniform2 => 2, uniform3 => 3, uniform4 => 4, uniform5 => 5,
             uniform6 => 6, uniform7 => 7, uniform8 => 8);
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Strategy producing unbiased booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Unbiased boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` (the attribute is written explicitly in the block)
/// that runs the body over `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)+
                    // One iteration per case so `prop_assume!` can skip
                    // via `continue` while panics carry the case index.
                    let __case_result: Result<(), String> = (|| { $body Ok(()) })();
                    if let Err(__msg) = __case_result {
                        panic!("proptest case {__case} of {} failed: {__msg}",
                               stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Asserts inside a `proptest!` body; reports the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err(format!("assertion failed: {} == {} ({:?} vs {:?})",
                               stringify!($a), stringify!($b), __a, __b));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err(format!($($fmt)*));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    // The self-tests spell out `proptest::` paths the way downstream
    // crates do; alias the crate so those paths resolve from inside it.
    use crate as proptest;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..100, 0u32..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..17, f in -2.0f32..2.0) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f = {f}");
        }

        #[test]
        fn tuple_patterns_work((a, b) in arb_pair(), c in 0usize..3) {
            prop_assert!(a < 100 && b < 100);
            prop_assert!(c < 3);
        }

        #[test]
        fn vec_and_array_strategies(
            v in proptest::collection::vec(0u8..10, 2..6),
            arr in proptest::array::uniform4(-1.0f64..1.0),
            flag in proptest::bool::ANY,
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(arr.iter().all(|x| x.abs() < 1.0));
            let _ = flag;
        }

        #[test]
        fn string_pattern_strategy(name in "[a-z]{1,6}") {
            prop_assert!((1..=6).contains(&name.len()), "{name:?}");
            prop_assert!(name.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn prop_map_and_assume(n in (0u32..50).prop_map(|x| x * 2), mut v in proptest::collection::vec(0i32..5, 3)) {
            prop_assume!(n > 0);
            prop_assert_eq!(n % 2, 0);
            v.push(99);
            prop_assert_eq!(v.len(), 4);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = super::TestRng::for_case("some_test", 3);
        let mut b = super::TestRng::for_case("some_test", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::for_case("some_test", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
